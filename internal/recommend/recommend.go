// Package recommend implements the food-design applications the paper's
// abstract motivates: "generating novel flavor pairings and tweaking
// recipes". It offers recipe completion (which ingredient should join a
// partial recipe, given a cuisine's blending style) and ingredient
// substitution (which catalog entity can replace an ingredient while
// staying close in flavor and role).
package recommend

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
)

// ErrNoCandidates is returned when no ingredient satisfies the
// constraints.
var ErrNoCandidates = errors.New("recommend: no candidates")

// Recommender ranks completions and substitutions against one corpus
// snapshot. It is immutable after construction and safe for concurrent
// use; Version reports the corpus version it was built from, so serving
// layers can rebuild it epoch-by-epoch and stamp responses with the
// model's version.
type Recommender struct {
	analyzer *pairing.Analyzer
	catalog  *flavor.Catalog
	version  uint64
	// cuisines holds the per-region analytical views (plus World) as of
	// the snapshot; a region absent from the map had no live recipes.
	cuisines map[recipedb.Region]*recipedb.Cuisine
}

// New builds a Recommender from the store's current state under one
// read epoch.
func New(analyzer *pairing.Analyzer, store *recipedb.Store) *Recommender {
	var r *Recommender
	store.Read(func(v *recipedb.View) { r = NewFromView(analyzer, v) })
	return r
}

// NewFromView builds a Recommender against an already-held corpus view,
// pinning every per-region cuisine to the same (version, snapshot)
// pair — the entry point for background rebuilds.
func NewFromView(analyzer *pairing.Analyzer, v *recipedb.View) *Recommender {
	r := &Recommender{
		analyzer: analyzer,
		catalog:  v.Catalog(),
		version:  v.Version,
		cuisines: make(map[recipedb.Region]*recipedb.Cuisine),
	}
	for _, region := range v.Regions() {
		r.cuisines[region] = v.BuildCuisine(region)
	}
	if v.Len() > 0 {
		r.cuisines[recipedb.World] = v.BuildCuisine(recipedb.World)
	}
	return r
}

// Version returns the corpus version the recommender was built from.
func (r *Recommender) Version() uint64 { return r.version }

// Suggestion is one ranked completion candidate.
type Suggestion struct {
	Ingredient flavor.ID
	// Score is the combined ranking score (higher is better).
	Score float64
	// FlavorFit is the mean shared-compound count with the partial
	// recipe, signed by the cuisine's pairing direction: uniform
	// cuisines reward overlap, contrasting cuisines reward its absence.
	FlavorFit float64
	// Popularity is the smoothed log-frequency of the ingredient in the
	// cuisine (the factor the paper finds dominates pairing patterns).
	Popularity float64
}

// CompleteOptions tunes Complete.
type CompleteOptions struct {
	// K is the number of suggestions (default 5).
	K int
	// Sign forces the pairing style: > 0 uniform, < 0 contrasting,
	// 0 = use the region's published Fig 4 direction.
	Sign int
	// PopularityWeight balances popularity against flavor fit
	// (default 1.0; 0 ranks on flavor alone).
	PopularityWeight float64
	// SameCategoryPenalty discourages a third spice when the partial
	// recipe already holds two, etc. 0 disables (default 0.25).
	SameCategoryPenalty float64
}

// Complete suggests ingredients to extend partial within the given
// cuisine. Ingredients already present, profile-less entities and
// ingredients unused by the cuisine are excluded.
func (r *Recommender) Complete(region recipedb.Region, partial []flavor.ID, opts CompleteOptions) ([]Suggestion, error) {
	if len(partial) == 0 {
		return nil, fmt.Errorf("recommend: empty partial recipe")
	}
	if opts.K <= 0 {
		opts.K = 5
	}
	if opts.PopularityWeight == 0 {
		opts.PopularityWeight = 1.0
	}
	if opts.SameCategoryPenalty == 0 {
		opts.SameCategoryPenalty = 0.25
	}
	sign := opts.Sign
	if sign == 0 {
		sign = region.PairingSign()
	}
	if sign == 0 {
		sign = 1
	}
	c := r.cuisines[region]
	if c == nil || c.NumRecipes() == 0 {
		return nil, fmt.Errorf("recommend: region %s has no recipes", region.Code())
	}
	present := make(map[flavor.ID]bool, len(partial))
	catCount := make(map[flavor.Category]int)
	for _, id := range partial {
		if int(id) < 0 || int(id) >= r.catalog.Len() {
			return nil, fmt.Errorf("recommend: ingredient %d outside catalog", id)
		}
		present[id] = true
		catCount[r.catalog.Ingredient(id).Category]++
	}

	// Normalize flavor fit by the cuisine's own mean pair sharing so the
	// popularity and flavor terms live on comparable scales.
	meanShared, n := 0.0, 0
	for i := 0; i < len(partial); i++ {
		for j := i + 1; j < len(partial); j++ {
			meanShared += float64(r.analyzer.Shared(partial[i], partial[j]))
			n++
		}
	}
	norm := 1.0
	if n > 0 && meanShared > 0 {
		norm = meanShared / float64(n)
	}

	var out []Suggestion
	for _, cand := range c.UniqueIngredients {
		if present[cand] || !r.catalog.Ingredient(cand).HasProfile {
			continue
		}
		var fit float64
		profiled := 0
		for _, id := range partial {
			if !r.catalog.Ingredient(id).HasProfile {
				continue
			}
			fit += float64(r.analyzer.Shared(cand, id))
			profiled++
		}
		if profiled == 0 {
			continue
		}
		fit = fit / float64(profiled) / norm * float64(sign)
		pop := math.Log1p(float64(c.IngredientFreq[cand])) / math.Log1p(float64(c.NumRecipes()))
		score := fit + opts.PopularityWeight*pop
		score -= opts.SameCategoryPenalty * float64(catCount[r.catalog.Ingredient(cand).Category])
		out = append(out, Suggestion{
			Ingredient: cand,
			Score:      score,
			FlavorFit:  fit,
			Popularity: pop,
		})
	}
	if len(out) == 0 {
		return nil, ErrNoCandidates
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Ingredient < out[j].Ingredient
	})
	if opts.K < len(out) {
		out = out[:opts.K]
	}
	return out, nil
}

// Substitute is one ranked replacement candidate.
type Substitute struct {
	Ingredient flavor.ID
	// Similarity is the Jaccard overlap of the two flavor profiles.
	Similarity float64
	// SameCategory reports whether the candidate shares the original's
	// category (the 'role' constraint).
	SameCategory bool
}

// SubstituteOptions tunes Substitutes.
type SubstituteOptions struct {
	// K is the number of substitutes (default 5).
	K int
	// RequireSameCategory restricts candidates to the original's
	// category (default true via NewSubstituteOptions; the zero value
	// of this struct searches all categories).
	RequireSameCategory bool
	// MinSimilarity drops candidates below this Jaccard overlap
	// (default 0).
	MinSimilarity float64
}

// Substitutes ranks replacements for the given ingredient by flavor-
// profile similarity. Candidates must carry a profile; the ingredient
// itself is excluded.
func (r *Recommender) Substitutes(id flavor.ID, opts SubstituteOptions) ([]Substitute, error) {
	if int(id) < 0 || int(id) >= r.catalog.Len() {
		return nil, fmt.Errorf("recommend: ingredient %d outside catalog", id)
	}
	orig := r.catalog.Ingredient(id)
	if !orig.HasProfile {
		return nil, fmt.Errorf("recommend: ingredient %q has no flavor profile", orig.Name)
	}
	if opts.K <= 0 {
		opts.K = 5
	}
	origProfile := r.catalog.Profile(id)
	origSize := origProfile.Count()

	var out []Substitute
	consider := func(cand flavor.ID) {
		if cand == id {
			return
		}
		ing := r.catalog.Ingredient(cand)
		if !ing.HasProfile {
			return
		}
		inter := origProfile.IntersectionCount(r.catalog.Profile(cand))
		union := origSize + r.catalog.Profile(cand).Count() - inter
		if union == 0 {
			return
		}
		sim := float64(inter) / float64(union)
		if sim < opts.MinSimilarity {
			return
		}
		out = append(out, Substitute{
			Ingredient:   cand,
			Similarity:   sim,
			SameCategory: ing.Category == orig.Category,
		})
	}
	if opts.RequireSameCategory {
		for _, cand := range r.catalog.ByCategory(orig.Category) {
			consider(cand)
		}
	} else {
		for i := 0; i < r.catalog.Len(); i++ {
			consider(flavor.ID(i))
		}
	}
	if len(out) == 0 {
		return nil, ErrNoCandidates
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].Ingredient < out[j].Ingredient
	})
	if opts.K < len(out) {
		out = out[:opts.K]
	}
	return out, nil
}
