package recommend

import (
	"errors"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/synth"
)

// shared fixture: catalog + 5%-scale synthetic corpus.
var (
	fixCatalog  *flavor.Catalog
	fixAnalyzer *pairing.Analyzer
	fixStore    *recipedb.Store
)

func init() {
	var err error
	fixCatalog, err = flavor.Build(flavor.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fixAnalyzer = pairing.NewAnalyzer(fixCatalog)
	fixStore, err = synth.Generate(fixAnalyzer, synth.TestConfig())
	if err != nil {
		panic(err)
	}
}

func lookup(t *testing.T, name string) flavor.ID {
	t.Helper()
	id, ok := fixCatalog.Lookup(name)
	if !ok {
		t.Fatalf("catalog lacks %q", name)
	}
	return id
}

func TestCompleteBasics(t *testing.T) {
	r := New(fixAnalyzer, fixStore)
	partial := []flavor.ID{lookup(t, "tomato"), lookup(t, "garlic")}
	sugs, err := r.Complete(recipedb.Italy, partial, CompleteOptions{K: 5})
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if len(sugs) != 5 {
		t.Fatalf("suggestions = %d", len(sugs))
	}
	seen := map[flavor.ID]bool{partial[0]: true, partial[1]: true}
	prev := sugs[0].Score
	for _, s := range sugs {
		if seen[s.Ingredient] {
			t.Errorf("suggestion %v repeats a partial ingredient", s.Ingredient)
		}
		seen[s.Ingredient] = true
		if s.Score > prev {
			t.Error("suggestions not sorted by score")
		}
		prev = s.Score
		if !fixCatalog.Ingredient(s.Ingredient).HasProfile {
			t.Error("profile-less suggestion")
		}
		if s.Popularity < 0 || s.Popularity > 1 {
			t.Errorf("popularity %g outside [0,1]", s.Popularity)
		}
	}
}

func TestCompleteSignFlipsRanking(t *testing.T) {
	r := New(fixAnalyzer, fixStore)
	partial := []flavor.ID{lookup(t, "tomato"), lookup(t, "basil")}
	uniform, err := r.Complete(recipedb.Italy, partial,
		CompleteOptions{K: 10, Sign: +1, PopularityWeight: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	contrast, err := r.Complete(recipedb.Italy, partial,
		CompleteOptions{K: 10, Sign: -1, PopularityWeight: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// With popularity muted, uniform ranking maximizes shared compounds
	// and contrasting minimizes them: the top pick must differ and the
	// uniform top must share more with the partial recipe.
	sharedWith := func(id flavor.ID) int {
		total := 0
		for _, p := range partial {
			total += fixAnalyzer.Shared(id, p)
		}
		return total
	}
	if sharedWith(uniform[0].Ingredient) <= sharedWith(contrast[0].Ingredient) {
		t.Errorf("uniform top shares %d, contrasting top shares %d",
			sharedWith(uniform[0].Ingredient), sharedWith(contrast[0].Ingredient))
	}
}

func TestCompletePopularityWeight(t *testing.T) {
	r := New(fixAnalyzer, fixStore)
	partial := []flavor.ID{lookup(t, "tomato")}
	// With huge popularity weight, the top suggestion must be one of the
	// cuisine's most frequent ingredients.
	sugs, err := r.Complete(recipedb.Italy, partial,
		CompleteOptions{K: 1, PopularityWeight: 1000})
	if err != nil {
		t.Fatal(err)
	}
	c := fixStore.BuildCuisine(recipedb.Italy)
	top := c.TopIngredients(5)
	found := false
	for _, id := range top {
		if id == sugs[0].Ingredient {
			found = true
		}
	}
	if !found {
		t.Errorf("popularity-dominated pick %v not among cuisine top-5 %v", sugs[0].Ingredient, top)
	}
}

func TestCompleteErrors(t *testing.T) {
	r := New(fixAnalyzer, fixStore)
	if _, err := r.Complete(recipedb.Italy, nil, CompleteOptions{}); err == nil {
		t.Error("empty partial succeeded")
	}
	if _, err := r.Complete(recipedb.Italy, []flavor.ID{flavor.ID(fixCatalog.Len() + 1)}, CompleteOptions{}); err == nil {
		t.Error("out-of-catalog partial succeeded")
	}
	// A minor region with no recipes in the test corpus errors cleanly.
	if fixStore.RegionLen(recipedb.Portugal) == 0 {
		if _, err := r.Complete(recipedb.Portugal, []flavor.ID{lookup(t, "tomato")}, CompleteOptions{}); err == nil {
			t.Error("empty region succeeded")
		}
	}
}

func TestSubstitutesSameCategory(t *testing.T) {
	r := New(fixAnalyzer, fixStore)
	id := lookup(t, "basil")
	subs, err := r.Substitutes(id, SubstituteOptions{K: 5, RequireSameCategory: true})
	if err != nil {
		t.Fatalf("Substitutes: %v", err)
	}
	if len(subs) != 5 {
		t.Fatalf("substitutes = %d", len(subs))
	}
	origCat := fixCatalog.Ingredient(id).Category
	prev := subs[0].Similarity
	for _, s := range subs {
		if s.Ingredient == id {
			t.Error("ingredient suggested as its own substitute")
		}
		if !s.SameCategory || fixCatalog.Ingredient(s.Ingredient).Category != origCat {
			t.Errorf("substitute %v outside category %v", s.Ingredient, origCat)
		}
		if s.Similarity > prev {
			t.Error("substitutes not sorted by similarity")
		}
		if s.Similarity < 0 || s.Similarity > 1 {
			t.Errorf("similarity %g outside [0,1]", s.Similarity)
		}
		prev = s.Similarity
	}
}

func TestSubstitutesCrossCategoryAndThreshold(t *testing.T) {
	r := New(fixAnalyzer, fixStore)
	id := lookup(t, "basil")
	all, err := r.Substitutes(id, SubstituteOptions{K: 50, RequireSameCategory: false})
	if err != nil {
		t.Fatal(err)
	}
	crossCategory := false
	for _, s := range all {
		if !s.SameCategory {
			crossCategory = true
		}
	}
	if !crossCategory {
		t.Log("all top-50 substitutes share the category (plausible but unusual)")
	}
	// A similarity floor of 1.0 excludes everything.
	if _, err := r.Substitutes(id, SubstituteOptions{K: 5, MinSimilarity: 1.01}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("impossible threshold err = %v", err)
	}
}

func TestSubstitutesErrors(t *testing.T) {
	r := New(fixAnalyzer, fixStore)
	if _, err := r.Substitutes(flavor.ID(-1), SubstituteOptions{}); err == nil {
		t.Error("negative id succeeded")
	}
	if noProf, ok := fixCatalog.Lookup("cooking spray"); ok {
		if _, err := r.Substitutes(noProf, SubstituteOptions{}); err == nil {
			t.Error("no-profile ingredient succeeded")
		}
	}
}

func TestSubstitutesSymmetryProperty(t *testing.T) {
	// Jaccard similarity is symmetric: if b ranks among a's substitutes
	// with similarity s, then a must appear in b's candidate set with
	// the same similarity (category permitting).
	r := New(fixAnalyzer, fixStore)
	a := lookup(t, "basil")
	subs, err := r.Substitutes(a, SubstituteOptions{K: 3, RequireSameCategory: true})
	if err != nil {
		t.Fatal(err)
	}
	b := subs[0]
	back, err := r.Substitutes(b.Ingredient, SubstituteOptions{K: fixCatalog.Len(), RequireSameCategory: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range back {
		if s.Ingredient == a {
			if s.Similarity != b.Similarity {
				t.Errorf("asymmetric similarity: %g vs %g", s.Similarity, b.Similarity)
			}
			return
		}
	}
	t.Error("original ingredient missing from reverse substitute list")
}
