package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"2 Jalapeno Peppers, roasted and slit", "2 jalapeno peppers roasted and slit"},
		{"  EXTRA-VIRGIN  olive oil!! ", "extra virgin olive oil"},
		{"za'atar", "za'atar"},
		{"", ""},
		{"...", ""},
		{"1/2 cup milk", "1 2 cup milk"},
		{"salt & pepper", "salt pepper"},
		{"crème fraîche", "crème fraîche"},
	}
	for _, tc := range cases {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("2 large Eggs, beaten")
	want := []string{"2", "large", "eggs", "beaten"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	if Tokenize("") != nil {
		t.Fatal("empty input should give nil tokens")
	}
	if Tokenize("!!!") != nil {
		t.Fatal("punctuation-only input should give nil tokens")
	}
	// standalone apostrophes trimmed
	got = Tokenize("' hello '")
	if !reflect.DeepEqual(got, []string{"hello"}) {
		t.Fatalf("apostrophe trim: %v", got)
	}
}

func TestIsQuantity(t *testing.T) {
	for _, q := range []string{"2", "350", "1.5", "1/2", "12"} {
		if !IsQuantity(q) {
			t.Errorf("IsQuantity(%q) = false", q)
		}
	}
	for _, q := range []string{"", "cup", "2x", "half", "a1"} {
		if IsQuantity(q) {
			t.Errorf("IsQuantity(%q) = true", q)
		}
	}
}

func TestStripTokens(t *testing.T) {
	stop := DefaultStopwords()
	toks := Tokenize("2 cups freshly chopped cilantro leaves")
	got := StripTokens(toks, stop)
	want := []string{"cilantro", "leaves"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("StripTokens = %v, want %v", got, want)
	}
	// nil stopword set only strips quantities
	got = StripTokens([]string{"2", "milk"}, nil)
	if !reflect.DeepEqual(got, []string{"milk"}) {
		t.Fatalf("nil stopwords: %v", got)
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"a", "b", "c"}
	got := NGrams(toks, 1, 2)
	want := []string{"a", "b", "c", "a b", "b c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NGrams = %v, want %v", got, want)
	}
	// maxN beyond length clamps
	got = NGrams(toks, 3, 6)
	if !reflect.DeepEqual(got, []string{"a b c"}) {
		t.Fatalf("clamped NGrams = %v", got)
	}
	if NGrams(nil, 1, 6) != nil {
		t.Fatal("nil tokens should give nil ngrams")
	}
	// minN < 1 treated as 1
	got = NGrams([]string{"x"}, 0, 1)
	if !reflect.DeepEqual(got, []string{"x"}) {
		t.Fatalf("minN clamp = %v", got)
	}
}

func TestNGramCount(t *testing.T) {
	// For n tokens and full 1..n range, count = n(n+1)/2.
	toks := strings.Fields("one two three four five six")
	got := NGrams(toks, 1, 6)
	if len(got) != 21 {
		t.Fatalf("6-token full ngram count = %d, want 21", len(got))
	}
}

func TestSingularize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"tomatoes", "tomato"},
		{"potatoes", "potato"},
		{"berries", "berry"},
		{"cherries", "cherry"},
		{"leaves", "leaf"},
		{"halves", "half"},
		{"olives", "olive"},
		{"chives", "chive"},
		{"eggs", "egg"},
		{"peppers", "pepper"},
		{"onions", "onion"},
		{"radishes", "radish"},
		{"boxes", "box"},
		{"glasses", "glass"},
		{"asparagus", "asparagus"},
		{"couscous", "couscous"},
		{"molasses", "molasses"},
		{"watercress", "watercress"},
		{"hummus", "hummus"},
		{"rice", "rice"},
		{"anchovies", "anchovy"},
		{"chilies", "chili"},
		{"milk", "milk"},
		{"", ""},
		{"octopi", "octopus"},
		{"fungi", "fungus"},
		{"grits", "grits"},
		{"mangoes", "mango"},
		{"peaches", "peach"},
		{"squashes", "squash"},
	}
	for _, tc := range cases {
		if got := Singularize(tc.in); got != tc.want {
			t.Errorf("Singularize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSingularizeTokens(t *testing.T) {
	got := SingularizeTokens([]string{"tomatoes", "and", "onions"})
	want := []string{"tomato", "and", "onion"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SingularizeTokens = %v", got)
	}
}

func TestSingularizeIdempotent(t *testing.T) {
	// Property: singularizing twice equals singularizing once for all
	// words exercised by the catalog vocabulary and test corpus.
	words := []string{
		"tomatoes", "berries", "leaves", "eggs", "onions", "radishes",
		"asparagus", "rice", "cherries", "potato", "onion", "leaf",
		"glass", "peach", "box",
	}
	for _, w := range words {
		once := Singularize(w)
		twice := Singularize(once)
		if once != twice {
			t.Errorf("Singularize not idempotent on %q: %q then %q", w, once, twice)
		}
	}
}

func TestStopwordSet(t *testing.T) {
	s := NewStopwordSet([]string{"a", "b"}, []string{"c"})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains("a") || !s.Contains("c") || s.Contains("d") {
		t.Fatal("Contains wrong")
	}
	s.Add("d")
	if !s.Contains("d") {
		t.Fatal("Add failed")
	}
}

func TestDefaultStopwordsCoverCulinaryTerms(t *testing.T) {
	s := DefaultStopwords()
	for _, w := range []string{"chopped", "cup", "tablespoon", "fresh", "diced", "the", "of", "minced", "cans"} {
		if !s.Contains(w) {
			t.Errorf("default stopwords missing %q", w)
		}
	}
	for _, w := range []string{"cilantro", "milk", "jalapeno", "saffron"} {
		if s.Contains(w) {
			t.Errorf("default stopwords wrongly contain %q", w)
		}
	}
}

func TestIsGenericFoodWord(t *testing.T) {
	if !IsGenericFoodWord("food") || !IsGenericFoodWord("juice") {
		t.Fatal("generic words not detected")
	}
	if IsGenericFoodWord("cilantro") {
		t.Fatal("cilantro flagged generic")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"whiskey", "whisky", 1},
		{"chili", "chile", 1},
		{"chili", "chilli", 1},
		{"flavor", "flavour", 1},
		{"same", "same", 0},
	}
	for _, tc := range cases {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	// Symmetry and identity-of-indiscernibles on short random strings.
	f := func(a, b string) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		d1 := Levenshtein(a, b)
		d2 := Levenshtein(b, a)
		if d1 != d2 {
			return false
		}
		if (d1 == 0) != (a == b) {
			return false
		}
		return d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 8 {
			a = a[:8]
		}
		if len(b) > 8 {
			b = b[:8]
		}
		if len(c) > 8 {
			c = c[:8]
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarity(t *testing.T) {
	if got := Similarity("", ""); got != 1 {
		t.Fatalf("Similarity of empties = %v", got)
	}
	if got := Similarity("abc", "abc"); got != 1 {
		t.Fatalf("identical Similarity = %v", got)
	}
	if got := Similarity("abc", "xyz"); got != 0 {
		t.Fatalf("disjoint Similarity = %v", got)
	}
	got := Similarity("whiskey", "whisky")
	if got < 0.85 || got >= 1 {
		t.Fatalf("whiskey/whisky Similarity = %v", got)
	}
}

func TestWithinEditBudget(t *testing.T) {
	if !WithinEditBudget("whiskey", "whisky", 1) {
		t.Fatal("whiskey/whisky should be within budget 1")
	}
	if WithinEditBudget("whiskey", "whisky", 0) {
		t.Fatal("budget 0 should reject")
	}
	// Length gap pre-filter.
	if WithinEditBudget("ab", "abcdef", 2) {
		t.Fatal("length gap 4 should fail budget 2")
	}
}
