// Package textproc implements the text-processing substrate behind the
// ingredient aliasing protocol of §IV.A: lower-casing, punctuation and
// special-character removal, stopword filtering (general English plus
// culinary stopwords), singularization of plural forms, n-gram
// construction up to 6-grams, and edit-distance fuzzy matching. The
// original study used Python's NLTK and inflect packages; this package
// reimplements the required functionality from scratch.
package textproc

import (
	"strings"
	"unicode"
)

// Normalize lower-cases s, replaces punctuation and special characters
// with spaces, collapses runs of whitespace, and trims. Digits are kept:
// quantity removal is a stopword-level concern (see IsQuantity).
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := true
	for _, r := range strings.ToLower(s) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
			prevSpace = false
		case r == '\'':
			// Keep apostrophes inside words ("za'atar"); they are
			// stripped by Tokenize when standalone.
			b.WriteRune(r)
			prevSpace = false
		default:
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
		}
	}
	return strings.TrimSpace(b.String())
}

// Tokenize splits a normalized or raw phrase into word tokens. It
// normalizes first, so callers may pass raw text.
func Tokenize(s string) []string {
	norm := Normalize(s)
	if norm == "" {
		return nil
	}
	fields := strings.Fields(norm)
	out := fields[:0]
	for _, f := range fields {
		f = strings.Trim(f, "'")
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// IsQuantity reports whether a token is numeric (possibly a fraction
// written as "1/2" before normalization splits it, or a decimal run).
// Tokens like "2" and "350" in ingredient phrases are quantities or oven
// temperatures, never ingredient words.
func IsQuantity(tok string) bool {
	if tok == "" {
		return false
	}
	digits := 0
	for _, r := range tok {
		if unicode.IsDigit(r) {
			digits++
		} else if r != '.' && r != '/' {
			return false
		}
	}
	return digits > 0
}

// StripTokens removes quantities and stopwords from a token sequence,
// returning a fresh slice.
func StripTokens(tokens []string, stop *StopwordSet) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if IsQuantity(t) {
			continue
		}
		if stop != nil && stop.Contains(t) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// NGrams returns all contiguous n-grams of tokens joined by single
// spaces, for n in [minN, maxN]. §IV.A builds n-grams up to 6 to surface
// multi-word ingredients from partial matches.
func NGrams(tokens []string, minN, maxN int) []string {
	if minN < 1 {
		minN = 1
	}
	if maxN > len(tokens) {
		maxN = len(tokens)
	}
	var out []string
	for n := minN; n <= maxN; n++ {
		for i := 0; i+n <= len(tokens); i++ {
			out = append(out, strings.Join(tokens[i:i+n], " "))
		}
	}
	return out
}
