package textproc

import "strings"

// Singularize converts an English plural noun to its singular form using
// irregular tables followed by suffix rules, mirroring the behaviour of
// the Python 'inflect' package for the vocabulary that occurs in
// ingredient phrases. Words recognized as already singular are returned
// unchanged.
func Singularize(w string) string {
	if w == "" {
		return w
	}
	if s, ok := irregularPlurals[w]; ok {
		return s
	}
	if uncountable[w] {
		return w
	}
	// Suffix rules, most specific first.
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 3:
		// berries -> berry; but "series" handled as uncountable above.
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ves") && len(w) > 3:
		// halves -> half, leaves -> leaf; knives -> knife handled by table.
		return w[:len(w)-3] + "f"
	case strings.HasSuffix(w, "oes") && len(w) > 3:
		// tomatoes -> tomato, potatoes -> potato.
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ses") && len(w) > 3:
		// molasses is uncountable (table); glasses -> glass.
		return w[:len(w)-2]
	case strings.HasSuffix(w, "xes") && len(w) > 3:
		return w[:len(w)-2]
	case strings.HasSuffix(w, "zes") && len(w) > 3:
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ches") && len(w) > 4:
		return w[:len(w)-2]
	case strings.HasSuffix(w, "shes") && len(w) > 4:
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ss"):
		// cress, watercress: already singular.
		return w
	case strings.HasSuffix(w, "us"):
		// asparagus, citrus, hummus: already singular.
		return w
	case strings.HasSuffix(w, "is"):
		// anis/anise endings: already singular.
		return w
	case strings.HasSuffix(w, "s") && len(w) > 2:
		return w[:len(w)-1]
	}
	return w
}

// SingularizeTokens singularizes every token, returning a fresh slice.
func SingularizeTokens(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = Singularize(t)
	}
	return out
}

// irregularPlurals maps irregular plural forms to singulars for the
// culinary vocabulary.
var irregularPlurals = map[string]string{
	"children":     "child",
	"feet":         "foot",
	"geese":        "goose",
	"knives":       "knife",
	"leaves":       "leaf",
	"loaves":       "loaf",
	"men":          "man",
	"mice":         "mouse",
	"women":        "woman",
	"teeth":        "tooth",
	"halves":       "half",
	"calves":       "calf",
	"wolves":       "wolf",
	"shelves":      "shelf",
	"potatoes":     "potato",
	"tomatoes":     "tomato",
	"mangoes":      "mango",
	"mangos":       "mango",
	"avocados":     "avocado",
	"pistachios":   "pistachio",
	"radishes":     "radish",
	"anchovies":    "anchovy",
	"cherries":     "cherry",
	"berries":      "berry",
	"chilies":      "chili",
	"chillies":     "chilli",
	"chiles":       "chile",
	"octopi":       "octopus",
	"octopuses":    "octopus",
	"fungi":        "fungus",
	"cacti":        "cactus",
	"gateaux":      "gateau",
	"eggs":         "egg",
	"olives":       "olive",  // do not apply -ves rule
	"chives":       "chive",  // do not apply -ves rule
	"endives":      "endive", // do not apply -ves rule
	"beverages":    "beverage",
	"sausages":     "sausage",
	"oranges":      "orange",
	"cabbages":     "cabbage",
	"grapes":       "grape",
	"dates":        "date",
	"limes":        "lime",
	"prunes":       "prune",
	"apples":       "apple",
	"noodles":      "noodle",
	"pancakes":     "pancake",
	"cakes":        "cake",
	"artichokes":   "artichoke",
	"pomegranates": "pomegranate",
	"clementines":  "clementine",
	"nectarines":   "nectarine",
	"sardines":     "sardine",
	"tangerines":   "tangerine",
	"courgettes":   "courgette",
	"aubergines":   "aubergine",
}

// uncountable lists mass nouns and words whose surface form ends in s
// but is singular; they are returned unchanged.
var uncountable = map[string]bool{
	"molasses":   true,
	"asparagus":  true,
	"hummus":     true,
	"couscous":   true,
	"watercress": true,
	"cress":      true,
	"swiss":      true,
	"citrus":     true,
	"rice":       true,
	"series":     true,
	"species":    true,
	"sugar":      true,
	"flour":      true,
	"butter":     true,
	"milk":       true,
	"water":      true,
	"honey":      true,
	"bass":       true,
	"grits":      true,
	"schnapps":   true,
	"brandy":     true,
}
