package textproc

// StopwordSet is a set of tokens removed during phrase processing.
type StopwordSet struct {
	words map[string]struct{}
}

// NewStopwordSet builds a set from the given word lists.
func NewStopwordSet(lists ...[]string) *StopwordSet {
	s := &StopwordSet{words: make(map[string]struct{})}
	for _, list := range lists {
		for _, w := range list {
			s.words[w] = struct{}{}
		}
	}
	return s
}

// Contains reports whether tok is a stopword.
func (s *StopwordSet) Contains(tok string) bool {
	_, ok := s.words[tok]
	return ok
}

// Len returns the number of stopwords in the set.
func (s *StopwordSet) Len() int { return len(s.words) }

// Add inserts additional stopwords (used by curation workflows).
func (s *StopwordSet) Add(words ...string) {
	for _, w := range words {
		s.words[w] = struct{}{}
	}
}

// EnglishStopwords is the general English function-word list (the subset
// of NLTK's list that occurs in ingredient phrases).
var EnglishStopwords = []string{
	"a", "an", "the", "and", "or", "of", "for", "to", "in", "on",
	"at", "as", "with", "without", "into", "from", "by", "about",
	"if", "then", "than", "such", "each", "per", "plus", "more",
	"very", "some", "any", "all", "few", "other", "own", "same",
	"so", "too", "not", "no", "nor", "only", "but", "is", "are",
	"was", "be", "been", "it", "its", "this", "that", "these",
	"those", "you", "your", "i", "we", "they", "them", "their",
	"can", "will", "just", "should", "may", "might", "until",
	"while", "when", "where", "how", "what", "which", "who",
	"also", "both", "between", "during", "before", "after",
	"above", "below", "up", "down", "out", "off", "over", "under",
	"again", "once", "here", "there", "well", "needed", "need",
	"desired", "optional", "taste", "preferably", "preferred",
	"approximately", "divided", "plus", "extra", "additional",
	"garnish", "serving", "serve", "accompaniment", "use", "used",
	"using", "like", "even", "best", "good", "store", "bought",
	"homemade", "favorite", "favourite", "brand", "quality",
}

// CulinaryStopwords are preparation and measurement words that never
// name ingredients: the "culinary stopwords" of §IV.A. The list covers
// units, container words, preparation verbs/participles, temperature and
// size descriptors, and state adjectives.
var CulinaryStopwords = []string{
	// units and measures
	"cup", "cups", "tablespoon", "tablespoons", "tbsp", "teaspoon",
	"teaspoons", "tsp", "ounce", "ounces", "oz", "pound", "pounds",
	"lb", "lbs", "gram", "grams", "g", "kg", "kilogram", "kilograms",
	"ml", "milliliter", "milliliters", "liter", "liters", "litre",
	"litres", "quart", "quarts", "pint", "pints", "gallon", "gallons",
	"inch", "inches", "cm", "centimeter", "centimeters", "dash",
	"pinch", "pinches", "handful", "splash", "drop", "drops", "stick",
	"sticks", "sprig", "sprigs", "bunch", "bunches", "head", "heads",
	"clove", "cloves", "stalk", "stalks", "rib", "ribs", "slice",
	"slices", "piece", "pieces", "strip", "strips", "chunk", "chunks",
	"cube", "cubes", "wedge", "wedges", "knob", "pat", "pats",
	"fluid", "fl", "size", "sized", "medium", "large", "small",
	"jumbo", "mini", "baby", "x",
	// containers and packaging
	"can", "cans", "canned", "jar", "jars", "package", "packages",
	"packet", "packets", "box", "boxes", "bag", "bags", "bottle",
	"bottles", "container", "containers", "carton", "cartons",
	"envelope", "envelopes", "tin", "tins", "tub", "tubs",
	// preparation verbs and participles
	"chopped", "diced", "minced", "sliced", "grated", "shredded",
	"peeled", "seeded", "cored", "trimmed", "halved", "quartered",
	"crushed", "ground", "beaten", "whisked", "sifted", "melted",
	"softened", "chilled", "cooled", "warmed", "heated", "cooked",
	"uncooked", "prepared", "drained", "rinsed", "washed", "dried",
	"soaked", "thawed", "frozen", "defrosted", "toasted",
	"blanched", "steamed", "boiled", "grilled", "broiled", "baked",
	"roasted",
	"fried", "sauteed", "caramelized", "browned", "crumbled",
	"flaked", "julienned", "cubed", "torn", "packed", "lightly",
	"loosely", "firmly", "finely", "coarsely", "roughly", "thinly",
	"thickly", "freshly", "stemmed", "deveined", "shelled", "pitted",
	"hulled", "husked", "scrubbed", "slit", "scored", "butterflied",
	"pounded", "tenderized", "marinated", "seasoned", "unseasoned",
	"split", "snipped", "crumbed", "zested", "juiced", "squeezed",
	"pureed", "mashed", "whipped", "folded", "separated", "reserved",
	"removed", "discarded", "leftover", "remaining", "cut",
	// state and quality adjectives
	"fresh", "dried", "raw", "ripe", "unripe", "overripe", "firm",
	"soft", "hard", "tender", "lean", "fatty", "boneless", "bone",
	"skinless", "skin", "seedless", "unsalted", "salted", "sweetened",
	"unsweetened", "lowfat", "nonfat", "reduced", "light", "lite",
	"heavy", "thick", "thin", "mild", "hot", "cold", "warm", "cool",
	"room", "temperature", "instant", "quick", "rapid", "active",
	"dry", "wet", "whole", "half", "halves", "third", "quarter",
	"coarse", "fine", "extra", "virgin", "pure", "natural", "organic",
	"free", "range", "wild", "farmed", "smoked", "cured", "aged",
	"mature", "young", "new", "old", "fashioned", "style", "type",
	"variety", "assorted", "mixed", "plain", "regular", "standard",
	"premium", "gourmet", "rustic", "country", "traditional",
	// fractional words
	"one", "two", "three", "four", "five", "six", "seven", "eight",
	"nine", "ten", "dozen", "couple", "several",
}

// GenericFoodWords are tokens too generic to identify an ingredient on
// their own; §III.B removed "29 generic and noisy entities" from the raw
// FlavorDB list. These words survive stopword removal (they can appear
// inside multi-word names like "bell pepper") but are rejected when they
// are the entire residual phrase.
var GenericFoodWords = []string{
	"food", "ingredient", "ingredients", "meat", "fish", "fruit",
	"vegetable", "vegetables", "spice", "spices", "herb", "herbs",
	"seasoning", "seasonings", "liquid", "water", "juice", "sauce",
	"dressing", "stock", "broth", "mix", "blend", "powder", "paste",
	"syrup", "oil", "fat", "flour", "leaves", "leaf", "seed",
	"seeds", "nut", "nuts", "berry", "berries", "bean", "beans",
	"pepper", "wine", "cheese", "bread", "cream", "milk",
}

// DefaultStopwords returns the standard stopword set used by the
// aliasing pipeline: English function words plus culinary stopwords.
func DefaultStopwords() *StopwordSet {
	return NewStopwordSet(EnglishStopwords, CulinaryStopwords)
}

// genericSet supports O(1) generic-word checks.
var genericSet = func() map[string]struct{} {
	m := make(map[string]struct{}, len(GenericFoodWords))
	for _, w := range GenericFoodWords {
		m[w] = struct{}{}
	}
	return m
}()

// IsGenericFoodWord reports whether w alone is too generic to count as
// an ingredient match.
func IsGenericFoodWord(w string) bool {
	_, ok := genericSet[w]
	return ok
}
