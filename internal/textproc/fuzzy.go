package textproc

// Levenshtein returns the edit distance between a and b: the minimum
// number of single-character insertions, deletions and substitutions
// transforming a into b. The aliasing protocol uses it to absorb
// spelling variations ("whiskey"/"whisky") that the synonym table does
// not enumerate.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(
				prev[j]+1,      // deletion
				curr[j-1]+1,    // insertion
				prev[j-1]+cost, // substitution
			)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Similarity returns 1 - dist/maxLen in [0, 1]; 1 means identical.
func Similarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// WithinEditBudget reports whether Levenshtein(a,b) <= budget without
// always computing the full distance: it exits early on a length-gap
// check. For the aliasing matcher the budget is small (1 or 2), so the
// length filter rejects most candidates instantly.
func WithinEditBudget(a, b string, budget int) bool {
	la, lb := len([]rune(a)), len([]rune(b))
	gap := la - lb
	if gap < 0 {
		gap = -gap
	}
	if gap > budget {
		return false
	}
	return Levenshtein(a, b) <= budget
}
