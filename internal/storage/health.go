package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Write-path health. A runtime I/O failure (EIO, ENOSPC, a torn
// write, a failed fsync) must not corrupt the store or take reads
// down: the failing commit poisons the active segment, mutations start
// failing fast with ErrWriteWedged, and reads keep serving from the
// intact sealed prefix. Recovery — a background probe or an explicit
// TryRecoverWrites — rotates to a fresh segment and seals the poisoned
// one at its durable boundary, salvaging any acknowledged-but-unsynced
// tail first. The one thing recovery never does is re-fsync a file
// whose fsync failed: after a failed fsync the kernel may mark the
// still-unwritten dirty pages clean, so a retried fsync can return
// success for bytes that never reached the platter (the "fsyncgate"
// failure that silently corrupted PostgreSQL installs). Durability for
// those bytes is only ever re-established by writing them to a fresh
// segment and fsyncing that.

// HealthState is the store's write-path condition.
type HealthState uint32

const (
	// HealthHealthy: mutations and reads both serve.
	HealthHealthy HealthState = iota
	// HealthReadOnly: a write-path I/O fault degraded the store; reads
	// serve, mutations fail with ErrWriteWedged, recovery may restore
	// HealthHealthy once the fault clears.
	HealthReadOnly
	// HealthWedged: recovery itself failed in a way that leaves the
	// on-disk bytes unreconciled with memory (e.g. the poisoned tail
	// could not be trimmed); mutations stay down until the store is
	// reopened.
	HealthWedged
)

// String names the state for health endpoints.
func (h HealthState) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthReadOnly:
		return "readOnly"
	case HealthWedged:
		return "wedged"
	}
	return "unknown"
}

// ErrWriteWedged is returned by mutations while the write path is
// degraded (HealthReadOnly or HealthWedged). Reads are unaffected.
// Callers can surface it as a retryable "storage unavailable"
// condition: a background probe (Options.WriteProbeInterval) or an
// explicit TryRecoverWrites restores service once the fault clears.
var ErrWriteWedged = errors.New("storage: write path unavailable")

// writeHealth is the store's write-path health state.
type writeHealth struct {
	state   atomic.Uint32
	lastErr atomic.Value // string
	// degradations counts healthy→readOnly transitions; recoveries
	// counts successful returns to healthy.
	degradations atomic.Uint64
	recoveries   atomic.Uint64
	// salvagedRecords counts acknowledged records recovery re-homed
	// from a poisoned tail into a fresh segment.
	salvagedRecords atomic.Uint64

	probeMu   sync.Mutex
	probeStop chan struct{}
	probeDone chan struct{}
}

// Health returns the store's current write-path state. Reads serve in
// every state; mutations only in HealthHealthy.
func (s *Store) Health() HealthState {
	return HealthState(s.whealth.state.Load())
}

// LastWriteError returns the error message that degraded the write
// path, or "" when it has never degraded.
func (s *Store) LastWriteError() string {
	if msg, ok := s.whealth.lastErr.Load().(string); ok {
		return msg
	}
	return ""
}

// writeGate rejects mutations while the write path is degraded.
func (s *Store) writeGate() error {
	if HealthState(s.whealth.state.Load()) == HealthHealthy {
		return nil
	}
	return s.wedgedErr()
}

// wedgedErr builds the mutation-rejection error, carrying the original
// fault for diagnosis while staying errors.Is-matchable.
func (s *Store) wedgedErr() error {
	if msg := s.LastWriteError(); msg != "" {
		return fmt.Errorf("%w (last error: %s)", ErrWriteWedged, msg)
	}
	return ErrWriteWedged
}

// degradeWrites poisons the active segment and moves the store to
// read-only after a write-path I/O failure. Caller holds the commit
// token. Idempotent; never downgrades an existing wedge.
func (s *Store) degradeWrites(err error) {
	if s.active != nil {
		s.active.poisoned.Store(true)
	}
	s.whealth.lastErr.Store(err.Error())
	if s.whealth.state.CompareAndSwap(uint32(HealthHealthy), uint32(HealthReadOnly)) {
		s.whealth.degradations.Add(1)
	}
}

// wedgeWrites marks the store permanently degraded for this process's
// lifetime: recovery failed in a way that leaves file bytes and memory
// state unreconciled, so only a fresh Open (which replays the log) may
// resume mutations.
func (s *Store) wedgeWrites(err error) {
	s.whealth.lastErr.Store(err.Error())
	s.whealth.state.Store(uint32(HealthWedged))
}

// TryRecoverWrites attempts to restore a read-only store to healthy:
// it rotates to a fresh segment, salvages the poisoned predecessor's
// acknowledged-but-unsynced tail into it, and seals the predecessor at
// its durable boundary. Returns nil when the store is healthy
// afterward; a non-nil error leaves it degraded (still read-only when
// the fault persists — e.g. ENOSPC during the rotation — or wedged if
// reconciliation itself failed). Safe to call at any time; the
// background probe (Options.WriteProbeInterval) calls it periodically,
// tests and operators call it directly.
func (s *Store) TryRecoverWrites() error {
	if s.closed.Load() {
		return ErrClosed
	}
	// compactMu first (same order as Compact) so no compaction pass can
	// scan or truncate segments this recovery is reshaping.
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.commitTok <- struct{}{}
	defer func() { <-s.commitTok }()
	return s.recoverWritesLocked()
}

// recoverWritesLocked does the work of TryRecoverWrites. Caller holds
// compactMu and the commit token.
func (s *Store) recoverWritesLocked() error {
	if s.closed.Load() {
		return ErrClosed
	}
	switch HealthState(s.whealth.state.Load()) {
	case HealthHealthy:
		return nil
	case HealthWedged:
		return s.wedgedErr()
	}
	old := s.active

	// 1. Fresh segment first. Failure (the fault persists — ENOSPC on
	// create, EIO on the dirent sync) keeps the store read-only; the
	// probe retries later. The poisoned predecessor is untouched, so
	// nothing is half-done.
	if err := s.newActiveSegment(); err != nil {
		return err
	}

	// 2. Salvage the acknowledged-but-unsynced tail. Without
	// SyncEveryPut, records in (syncedSize, size] were acknowledged and
	// applied at write time; trimming them would lose acknowledged
	// writes. Copy their frames verbatim into the fresh segment, fsync
	// it, and repoint the key directory — the fresh-segment write is
	// also what restores durability after a failed fsync. Under
	// SyncEveryPut nothing past syncedSize was ever acknowledged or
	// applied, so there is nothing to salvage.
	if !s.opts.SyncEveryPut && old.size > old.syncedSize.Load() {
		if err := s.salvageTail(old); err != nil {
			// The fresh segment may hold a partial copy; poison it and
			// stay read-only. Its unreferenced bytes are harmless on
			// replay: identical frames, superseding identical records.
			s.degradeWrites(err)
			return err
		}
	}

	// 3. Seal the predecessor at its durable boundary. Everything
	// beyond syncedSize is now either salvaged (re-homed above) or was
	// never acknowledged; trimming reconciles the file with the key
	// directory. A failed trim wedges: the file would replay bytes this
	// process promised were gone.
	boundary := old.syncedSize.Load()
	if f := osFile(old.f); f != nil {
		if err := f.Truncate(boundary); err != nil {
			err = fmt.Errorf("storage: trimming poisoned segment: %w", err)
			s.wedgeWrites(err)
			return err
		}
	}
	s.segMu.Lock()
	old.size = boundary
	s.segMu.Unlock()
	if !old.syncFailed.Load() {
		// The trim is metadata-only over an already-durable prefix, but
		// fsync it so a crash cannot resurrect trimmed bytes as a torn
		// tail in what is no longer the newest segment. Skipped
		// entirely for a file whose fsync already failed (see the
		// fsyncgate note atop this file): its prefix up to syncedSize
		// was durably synced before the failure, and retrying the fsync
		// could silently lie.
		if err := old.f.Sync(); err != nil {
			old.syncFailed.Store(true)
			s.degradeWrites(fmt.Errorf("storage: sealing poisoned segment: %w", err))
			return err
		}
		s.mapSegment(old)
	}
	old.poisoned.Store(false)
	s.whealth.state.Store(uint32(HealthHealthy))
	s.whealth.recoveries.Add(1)
	return nil
}

// salvageTail copies the poisoned predecessor's acknowledged frames —
// the (syncedSize, size] window — verbatim into the fresh active
// segment, fsyncs them, and repoints the key directory. Caller holds
// the commit token; the window is bounded by MaxSegmentBytes.
func (s *Store) salvageTail(old *segment) error {
	oldSynced := old.syncedSize.Load()
	n := old.size - oldSynced
	buf := make([]byte, n)
	if _, err := old.f.ReadAt(buf, oldSynced); err != nil {
		return fmt.Errorf("storage: reading poisoned tail: %w", err)
	}
	act := s.active
	base := act.size
	if _, err := act.f.WriteAt(buf, base); err != nil {
		return fmt.Errorf("storage: salvaging poisoned tail: %w", err)
	}
	act.size = base + n
	if err := s.syncActive(); err != nil {
		act.syncFailed.Store(true)
		return fmt.Errorf("storage: syncing salvaged tail: %w", err)
	}
	act.syncedSize.Store(act.size)

	// Repoint live entries frame by frame. Mutations have been gated
	// since the fault, so an entry into the old tail is exactly at the
	// offset the frame was applied from; anything else in the window is
	// a within-batch superseded copy or a tombstone, dead on arrival in
	// the new segment.
	rr := newRecordReader(bytes.NewReader(buf))
	salvaged := uint64(0)
	for {
		off := rr.offset()
		rec, err := rr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("storage: walking poisoned tail: %w", err)
		}
		length := rr.offset() - off
		if rec.tombstone {
			s.addDead(act.id, length)
			continue
		}
		key := string(rec.key)
		sh := s.shardFor(key)
		sh.mu.Lock()
		if loc, ok := sh.m[key]; ok && loc.segID == old.id && loc.offset == oldSynced+off {
			sh.m[key] = keyLoc{
				segID:  act.id,
				offset: base + off,
				length: length,
				valLen: len(rec.value),
			}
			if s.cache != nil {
				s.cache.invalidate(key)
			}
			salvaged++
		} else {
			s.addDead(act.id, length)
		}
		sh.mu.Unlock()
	}
	s.whealth.salvagedRecords.Add(salvaged)
	return nil
}

// startWriteProbe launches the background recovery probe: every
// interval, a read-only store attempts TryRecoverWrites, so mutations
// resume automatically once a transient fault (disk space freed, I/O
// error cleared) goes away. No-op if already running.
func (s *Store) startWriteProbe(interval time.Duration) {
	s.whealth.probeMu.Lock()
	defer s.whealth.probeMu.Unlock()
	if s.whealth.probeStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.whealth.probeStop, s.whealth.probeDone = stop, done
	go s.writeProbeLoop(interval, stop, done)
}

// stopWriteProbe signals the probe and waits for it. Idempotent.
func (s *Store) stopWriteProbe() {
	s.whealth.probeMu.Lock()
	stop, done := s.whealth.probeStop, s.whealth.probeDone
	s.whealth.probeStop, s.whealth.probeDone = nil, nil
	s.whealth.probeMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// writeProbeLoop is the probe goroutine body.
func (s *Store) writeProbeLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if s.closed.Load() {
				return
			}
			if s.Health() == HealthReadOnly {
				s.TryRecoverWrites() // failure: stay degraded, retry next tick
			}
		}
	}
}

// HealthStats is the write-path + scrub health snapshot surfaced by
// health endpoints.
type HealthStats struct {
	// State is the write-path condition: "healthy", "readOnly" or
	// "wedged". Reads serve in every state.
	State string
	// LastWriteError is the fault that degraded the write path, if any.
	LastWriteError string
	// Degradations counts healthy→readOnly transitions; Recoveries
	// counts successful returns to healthy; SalvagedRecords counts
	// acknowledged records recovery re-homed from poisoned tails.
	Degradations    uint64
	Recoveries      uint64
	SalvagedRecords uint64
	// Scrub reports background segment-scrub activity.
	Scrub ScrubStats
	// QuarantinedSegments is the number of registered segments the
	// scrubber has quarantined and not yet salvaged away.
	QuarantinedSegments int
}

// HealthStats returns a snapshot of the store's fault-tolerance state.
func (s *Store) HealthStats() HealthStats {
	hs := HealthStats{
		State:           s.Health().String(),
		LastWriteError:  s.LastWriteError(),
		Degradations:    s.whealth.degradations.Load(),
		Recoveries:      s.whealth.recoveries.Load(),
		SalvagedRecords: s.whealth.salvagedRecords.Load(),
		Scrub:           s.ScrubStats(),
	}
	s.segMu.RLock()
	for _, seg := range s.segments {
		if seg.quarantined.Load() {
			hs.QuarantinedSegments++
		}
	}
	s.segMu.RUnlock()
	return hs
}
