package storage

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildCompactionFixture writes a deterministic multi-segment store
// with overwrites, resurrected keys and tombstones, returning the open
// store and the expected logical contents.
func buildCompactionFixture(t *testing.T, dir string) (*Store, map[string]string) {
	t.Helper()
	s, err := Open(dir, Options{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[string]string)
	key := func(i int) string { return fmt.Sprintf("key%03d", i) }
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 30; i++ {
			v := fmt.Sprintf("gen%d-%s", gen, strings.Repeat("x", 10+i))
			if err := s.Put(key(i), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[key(i)] = v
		}
		// Deletes: gen 0/1 windows get resurrected by the next
		// generation, gen 2's stays dead.
		for i := gen * 5; i < gen*5+4; i++ {
			if err := s.Delete(key(i)); err != nil {
				t.Fatal(err)
			}
			delete(model, key(i))
		}
	}
	// Final deletes with no later put: these tombstones must keep their
	// keys dead through every compaction and crash.
	for i := 20; i < 25; i++ {
		if err := s.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
		delete(model, key(i))
	}
	if st := s.Stats(); st.Segments < 4 {
		t.Fatalf("fixture built only %d segments, want >= 4", st.Segments)
	}
	return s, model
}

// verifyModel asserts the store's logical contents equal the model.
func verifyModel(t *testing.T, s *Store, model map[string]string, label string) {
	t.Helper()
	if s.Len() != len(model) {
		t.Errorf("%s: Len = %d, want %d", label, s.Len(), len(model))
	}
	for k, want := range model {
		got, err := s.Get(k)
		if err != nil || string(got) != want {
			t.Errorf("%s: Get(%q) = %q, %v; want %q", label, k, got, err, want)
		}
	}
	// Keys with a final tombstone must stay dead (resurrection check).
	for i := 20; i < 25; i++ {
		k := fmt.Sprintf("key%03d", i)
		if s.Has(k) {
			t.Errorf("%s: deleted key %q resurrected", label, k)
		}
	}
}

// sealedExceptOldest picks every sealed segment but the oldest — a
// victim set that leaves an older survivor, forcing the tombstone-copy
// path of the compactor.
func sealedExceptOldest(s *Store) []*segment {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	var sealed []*segment
	for _, seg := range s.segments {
		if seg != s.active {
			sealed = append(sealed, seg)
		}
	}
	sort.Slice(sealed, func(i, j int) bool { return segOrder(sealed[i], sealed[j]) })
	if len(sealed) <= 1 {
		return nil
	}
	return sealed[1:]
}

// TestCompactionCrashMatrix is the fault-injection matrix: for every
// filesystem operation a compaction performs, simulate power loss right
// there (later operations fail too, and the failing write tears), then
// reopen the directory and require the recovered store to hold exactly
// the pre-compaction logical contents — which equal the
// post-compaction contents, so recovery to either valid state passes
// and anything mixed (lost keys, resurrected deletes, wrong values)
// fails. Each case then proves the recovered store is fully usable:
// writes land and a clean compaction completes.
func TestCompactionCrashMatrix(t *testing.T) {
	modes := []struct {
		name    string
		compact func(s *Store) error
	}{
		{"full", func(s *Store) error { return s.Compact() }},
		// Partial pass over a suffix of the sealed segments: an older
		// survivor remains, so load-bearing tombstones must be copied
		// into the outputs, not dropped.
		{"partial", func(s *Store) error {
			return s.compactSegments(sealedExceptOldest(s))
		}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			// Probe run: count the operations of an uncrashed pass.
			probeDir := t.TempDir()
			ps, _ := buildCompactionFixture(t, probeDir)
			probe := &opBudget{remaining: math.MaxInt32}
			ps.fs = faultFS(probe)
			if err := mode.compact(ps); err != nil {
				t.Fatalf("probe compaction: %v", err)
			}
			ps.fs = osFS()
			ps.Close()
			total := probe.ops
			if total < 10 {
				t.Fatalf("probe saw only %d fs operations; fixture too small for a meaningful matrix", total)
			}

			for budget := 0; budget < total; budget++ {
				t.Run(fmt.Sprintf("crash-after-%d-ops", budget), func(t *testing.T) {
					dir := t.TempDir()
					s, model := buildCompactionFixture(t, dir)
					b := &opBudget{remaining: budget}
					s.fs = faultFS(b)
					err := mode.compact(s)
					if err == nil && !b.crashed {
						t.Fatalf("compaction finished within %d ops; matrix out of date", budget)
					}
					crashClose(s)

					s2, err := Open(dir, Options{})
					if err != nil {
						t.Fatalf("Open after crash: %v", err)
					}
					verifyModel(t, s2, model, "recovered")

					// The recovered store must be fully live: accept
					// writes and complete a clean compaction.
					if err := s2.Put("post-crash", []byte("v")); err != nil {
						t.Fatalf("Put after recovery: %v", err)
					}
					model["post-crash"] = "v"
					if err := s2.Compact(); err != nil {
						t.Fatalf("Compact after recovery: %v", err)
					}
					verifyModel(t, s2, model, "recompacted")
					if err := s2.Close(); err != nil {
						t.Fatalf("Close: %v", err)
					}

					s3, err := Open(dir, Options{})
					if err != nil {
						t.Fatalf("final reopen: %v", err)
					}
					verifyModel(t, s3, model, "final")
					s3.Close()
				})
			}
		})
	}
}

// TestManifestDirSyncFailureKeepsOutputs is the regression test for
// post-commit error classification: once the manifest rename has
// landed, a failing directory fsync must NOT roll back (deleting the
// staged outputs while the possibly-durable manifest sentences the
// victims would lose data at the next Open). The store must wedge,
// keep the outputs, and recover to the post-compaction state on
// reopen.
func TestManifestDirSyncFailureKeepsOutputs(t *testing.T) {
	dir := t.TempDir()
	s, model := buildCompactionFixture(t, dir)
	fs := osFS()
	realSyncDir := fs.syncDir
	tripped := false
	fs.syncDir = func(d string) error {
		if !tripped {
			tripped = true
			return fmt.Errorf("transient EIO")
		}
		return realSyncDir(d)
	}
	s.fs = fs

	err := s.Compact()
	if err == nil || !tripped {
		t.Fatalf("Compact = %v (tripped=%v), want the injected dir-sync failure", err, tripped)
	}
	if !s.compactor.wedged.Load() {
		t.Fatal("post-commit failure did not wedge the compactor")
	}
	if err := s.Compact(); err != ErrCompactorWedged {
		t.Fatalf("Compact while wedged = %v, want ErrCompactorWedged", err)
	}
	// The staged outputs must still exist: the manifest may be durable.
	_, tmps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) == 0 {
		t.Fatal("staged outputs were discarded after the manifest committed")
	}
	verifyModel(t, s, model, "wedged") // still fully readable
	crashClose(s)

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after wedge: %v", err)
	}
	defer s2.Close()
	verifyModel(t, s2, model, "recovered")
	if err := s2.Compact(); err != nil {
		t.Fatalf("Compact after reopen: %v", err)
	}
	verifyModel(t, s2, model, "recompacted")
}

// TestLingeringVictimStaysSentenced is the regression test for Drop
// carry-forward: a victim kept on disk past its compaction (here by a
// pinned reader that never drains, as a crashed process would leave
// it) must stay on the manifest's Drop list through later compactions
// — otherwise a crash replays it as live and resurrects keys whose
// tombstones earlier compactions already folded away.
func TestLingeringVictimStaysSentenced(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("victim-key", []byte(strings.Repeat("v", 64))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("ballast%d", i), []byte(strings.Repeat("b", 64))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("victim-key"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("late%d", i), []byte(strings.Repeat("l", 64))); err != nil {
			t.Fatal(err)
		}
	}

	// Pin the segment holding victim-key's put, as an in-flight read
	// would; the pin is never released, as in a process that crashes
	// mid-read.
	s.segMu.RLock()
	seg1 := s.segments[1]
	if seg1 == nil {
		s.segMu.RUnlock()
		t.Fatal("segment 1 missing")
	}
	seg1.acquire()
	s.segMu.RUnlock()

	// Compaction A: the whole log prefix is rewritten, so victim-key's
	// tombstone is dropped — its put in segment 1 is the only trace
	// left, and only the Drop list keeps it dead after a crash.
	if err := s.Compact(); err != nil {
		t.Fatalf("compaction A: %v", err)
	}
	if _, err := os.Stat(segmentPath(dir, 1)); err != nil {
		t.Fatalf("pinned victim was unlinked early: %v", err)
	}

	// Compaction B: new garbage, new manifest. Without carry-forward
	// this resets Drop and un-sentences the lingering segment 1.
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("ballast%d", i), []byte(strings.Repeat("B", 64))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("compaction B: %v", err)
	}
	crashClose(s)

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer s2.Close()
	if s2.Has("victim-key") {
		t.Fatal("lingering victim replayed as live: tombstoned key resurrected")
	}
	if _, err := os.Stat(segmentPath(dir, 1)); err == nil {
		t.Error("sentenced segment 1 still on disk after reopen")
	}
}

// TestPartialCompactionPreservesTombstones pins the tombstone rules: a
// tombstone whose key has an older version in a surviving segment must
// be copied; once the survivor is compacted too, the tombstone may
// drop.
func TestPartialCompactionPreservesTombstones(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Segment 1: the old put of "doomed" plus ballast.
	if err := s.Put("doomed", []byte("old-value")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("ballast%d", i), []byte(strings.Repeat("b", 30))); err != nil {
			t.Fatal(err)
		}
	}
	// Later segments: the tombstone and more ballast.
	if err := s.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("late%d", i), []byte(strings.Repeat("l", 30))); err != nil {
			t.Fatal(err)
		}
	}

	if err := s.compactSegments(sealedExceptOldest(s)); err != nil {
		t.Fatalf("partial compaction: %v", err)
	}
	if s.Has("doomed") {
		t.Fatal("tombstoned key visible after partial compaction")
	}
	s.Close()

	// The tombstone must have survived into the outputs: reopening
	// replays the old put in segment 1, then the copied tombstone.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Has("doomed") {
		t.Fatal("partial compaction dropped a load-bearing tombstone: key resurrected after reopen")
	}
	if n := countTombstones(t, dir, "doomed"); n != 1 {
		t.Errorf("tombstones on disk = %d, want 1 preserved copy", n)
	}

	// Full compaction folds the old put away; now the tombstone may go.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if s2.Has("doomed") {
		t.Fatal("key resurrected by full compaction")
	}
	s2.Close()
	if n := countTombstones(t, dir, "doomed"); n != 0 {
		t.Errorf("tombstones on disk after full compaction = %d, want 0", n)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Has("doomed") {
		t.Fatal("key resurrected after full compaction and reopen")
	}
}

// TestBackgroundCompactorStress runs Get/Put/Delete/Fold continuously
// while the background compactor churns through several full cycles,
// under the race detector when enabled. Asserts zero lost updates
// (every writer's last value is what the store returns), stable keys
// never flicker, and every segment's refcount drains to zero at the
// end.
func TestBackgroundCompactorStress(t *testing.T) {
	s := openTemp(t, Options{
		MaxSegmentBytes:      2048,
		CompactionFloorBytes: 1,
		CompactInterval:      500 * time.Microsecond,
		CompactGarbageRatio:  0.2,
	})
	const stable = 32
	for i := 0; i < stable; i++ {
		if err := s.Put(fmt.Sprintf("stable/%03d", i), []byte("anchor")); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	fail := make(chan error, 16)
	report := func(err error) {
		select {
		case fail <- err:
		default:
		}
	}
	var wg sync.WaitGroup

	// Writers: each owns a disjoint key space, so its view of the last
	// written value is authoritative. finals collects them.
	const writers = 3
	finals := make([]map[string]string, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make(map[string]string)
			finals[w] = mine
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("owned/w%d/%03d", w, i%61)
				val := fmt.Sprintf("w%d-gen%d-%s", w, i, strings.Repeat("v", 20))
				if err := s.Put(key, []byte(val)); err != nil {
					report(fmt.Errorf("Put(%s): %w", key, err))
					return
				}
				mine[key] = val
				if i%7 == 6 {
					if err := s.Delete(key); err != nil {
						report(fmt.Errorf("Delete(%s): %w", key, err))
						return
					}
					delete(mine, key)
				}
			}
		}(w)
	}

	// Readers: stable keys must never flicker through compactions.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("stable/%03d", (i*13+r)%stable)
				if v, err := s.Get(key); err != nil || string(v) != "anchor" {
					report(fmt.Errorf("Get(%s) = %q, %v", key, v, err))
					return
				}
			}
		}(r)
	}

	// Folder: every consistent snapshot holds all stable keys.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			seen := 0
			err := s.Fold(func(k string, v []byte) error {
				if strings.HasPrefix(k, "stable/") {
					seen++
				}
				return nil
			})
			if err != nil {
				report(fmt.Errorf("Fold: %w", err))
				return
			}
			if seen != stable {
				report(fmt.Errorf("fold snapshot saw %d stable keys, want %d", seen, stable))
				return
			}
		}
	}()

	// Let the compactor complete at least 3 passes under load.
	deadline := time.After(30 * time.Second)
	for s.CompactionStats().Runs < 3 {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("compactor completed only %d runs in 30s", s.CompactionStats().Runs)
		case err := <-fail:
			close(stop)
			wg.Wait()
			t.Fatal(err)
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}
	cs := s.CompactionStats()
	if cs.Wedged || cs.LastError != "" {
		t.Fatalf("compactor unhealthy after stress: %+v", cs)
	}
	t.Logf("compaction runs=%d segments=%d reclaimed=%d", cs.Runs, cs.SegmentsCompacted, cs.BytesReclaimed)

	// Zero lost updates: every owner's final view matches the store.
	s.stopCompactor()
	for w, mine := range finals {
		for k, want := range mine {
			got, err := s.Get(k)
			if err != nil || string(got) != want {
				t.Errorf("lost update: writer %d key %q = %q, %v; want %q", w, k, got, err, want)
			}
		}
		for i := 0; i < 61; i++ {
			k := fmt.Sprintf("owned/w%d/%03d", w, i)
			if _, tracked := mine[k]; !tracked && s.Has(k) {
				t.Errorf("deleted key %q resurrected", k)
			}
		}
	}
	// With traffic and the compactor stopped, every refcount must have
	// drained: no reader or compaction pass may leak a pin.
	s.segMu.RLock()
	for id, seg := range s.segments {
		if refs := seg.refs.Load(); refs != 0 {
			t.Errorf("segment %d holds %d undrained refs", id, refs)
		}
	}
	s.segMu.RUnlock()
}

// TestGarbageRatioTriggersCompaction is the regression test for
// per-segment garbage accounting: a segment crosses the configured
// ratio exactly when its superseded bytes do, and a compaction pass at
// that ratio picks it — and only it — as a victim.
func TestGarbageRatioTriggersCompaction(t *testing.T) {
	s := openTemp(t, Options{MaxSegmentBytes: 1024, CompactionFloorBytes: 1})
	val := strings.Repeat("x", 80)
	// Fill segment 1 with 10 records, then rotate by writing elsewhere.
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("cold%02d", i), []byte(val)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; ; i++ {
		if err := s.Put(fmt.Sprintf("filler%03d", i), []byte(val)); err != nil {
			t.Fatal(err)
		}
		s.segMu.RLock()
		rotated := s.active.id > 1
		s.segMu.RUnlock()
		if rotated {
			break
		}
	}
	seg1 := func() *segment {
		s.segMu.RLock()
		defer s.segMu.RUnlock()
		return s.segments[1]
	}()
	if seg1 == nil {
		t.Fatal("segment 1 missing")
	}

	// Supersede cold keys one by one until segment 1 crosses 50%.
	superseded := 0
	for seg1.garbageRatio() < 0.5 {
		if superseded >= 10 {
			t.Fatalf("superseded all 10 records, ratio still %.2f", seg1.garbageRatio())
		}
		if err := s.Put(fmt.Sprintf("cold%02d", superseded), []byte("moved")); err != nil {
			t.Fatal(err)
		}
		superseded++
		if victims := s.selectVictims(0.5); seg1.garbageRatio() < 0.5 {
			for _, v := range victims {
				if v.id == 1 {
					t.Fatalf("segment 1 selected at ratio %.2f < 0.5", seg1.garbageRatio())
				}
			}
		}
	}
	found := false
	for _, v := range s.selectVictims(0.5) {
		if v.id == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("segment 1 not selected at ratio %.2f >= 0.5", seg1.garbageRatio())
	}

	before := s.Stats()
	n, err := s.compactOnce(0.5)
	if err != nil {
		t.Fatalf("compactOnce: %v", err)
	}
	if n == 0 {
		t.Fatal("compactOnce rewrote nothing despite an eligible victim")
	}
	after := s.Stats()
	if after.DeadBytes >= before.DeadBytes {
		t.Errorf("DeadBytes %d -> %d; compaction reclaimed nothing", before.DeadBytes, after.DeadBytes)
	}
	s.segMu.RLock()
	_, stillThere := s.segments[1]
	s.segMu.RUnlock()
	if stillThere {
		t.Error("victim segment 1 still registered after compaction")
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("cold%02d", i)
		want := val
		if i < superseded {
			want = "moved"
		}
		if got, err := s.Get(k); err != nil || string(got) != want {
			t.Errorf("Get(%s) = %q, %v after compaction", k, got, err)
		}
	}
}

// TestPerSegmentDeadMatchesReplay asserts the runtime garbage counters
// equal what replay computes from the log — the two accountings must
// never drift, or victim selection degrades silently.
func TestPerSegmentDeadMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := buildCompactionFixture(t, dir)
	runtimeDead := make(map[uint64]int64)
	s.segMu.RLock()
	for id, seg := range s.segments {
		runtimeDead[id] = seg.dead.Load()
	}
	s.segMu.RUnlock()
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.segMu.RLock()
	defer s2.segMu.RUnlock()
	if len(s2.segments) != len(runtimeDead) {
		t.Fatalf("segment count changed across reopen: %d -> %d", len(runtimeDead), len(s2.segments))
	}
	for id, seg := range s2.segments {
		if got, want := seg.dead.Load(), runtimeDead[id]; got != want {
			t.Errorf("segment %d: replay dead = %d, runtime tracked %d", id, got, want)
		}
	}
}
