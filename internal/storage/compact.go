package storage

import (
	"fmt"
	"os"
	"sort"
)

// Compact rewrites all live records into fresh segments and retires the
// old files, reclaiming space held by superseded records and
// tombstones. It is a stop-the-world pass: the commit token freezes
// writers and every shard write lock freezes readers for the duration
// (the corpus workload is build-once/read-many, so pause time is
// acceptable and documented in the bench harness). Live records are
// copied in (segID, offset) order — one sequential sweep over the old
// log. Reads that resolved a location before the freeze finish safely:
// they hold a reference that keeps the retired file open until they
// drain.
func (s *Store) Compact() error {
	s.commitTok <- struct{}{}
	defer func() { <-s.commitTok }()
	if s.closed.Load() {
		return ErrClosed
	}
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	defer func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}()

	// Collect the live set and order it for a sequential copy pass.
	type liveRec struct {
		key string
		loc keyLoc
	}
	var live []liveRec
	for i := range s.shards {
		for k, loc := range s.shards[i].m {
			live = append(live, liveRec{key: k, loc: loc})
		}
	}
	sort.Slice(live, func(i, j int) bool {
		a, b := live[i].loc, live[j].loc
		if a.segID != b.segID {
			return a.segID < b.segID
		}
		return a.offset < b.offset
	})

	// Stage new segments under temporary state so a failure mid-compact
	// leaves the original files untouched.
	next := s.active.id + 1
	newSegments := make(map[uint64]*segment)
	newMaps := make([]map[string]keyLoc, len(s.shards))
	for i := range newMaps {
		newMaps[i] = make(map[string]keyLoc, len(s.shards[i].m))
	}

	var cur *segment
	newSegment := func() error {
		path := segmentPath(s.dir, next)
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("storage: compact creating segment: %w", err)
		}
		cur = &segment{id: next, path: path, f: f}
		newSegments[next] = cur
		next++
		return nil
	}
	fail := func(err error) error {
		for _, seg := range newSegments {
			seg.f.Close()
			os.Remove(seg.path)
		}
		return err
	}
	if err := newSegment(); err != nil {
		return fail(err)
	}

	for _, lr := range live {
		src := s.segments[lr.loc.segID]
		raw := make([]byte, lr.loc.length)
		if _, err := src.f.ReadAt(raw, lr.loc.offset); err != nil {
			return fail(fmt.Errorf("storage: compact reading %q: %w", lr.key, err))
		}
		off := cur.size
		if _, err := cur.f.WriteAt(raw, off); err != nil {
			return fail(fmt.Errorf("storage: compact writing %q: %w", lr.key, err))
		}
		cur.size += int64(len(raw))
		newMaps[s.shardIndex(lr.key)][lr.key] = keyLoc{
			segID:  cur.id,
			offset: off,
			length: lr.loc.length,
			valLen: lr.loc.valLen,
		}
		if cur.size >= s.opts.MaxSegmentBytes {
			if err := cur.f.Sync(); err != nil {
				return fail(fmt.Errorf("storage: compact sync: %w", err))
			}
			if err := newSegment(); err != nil {
				return fail(err)
			}
		}
	}
	if err := cur.f.Sync(); err != nil {
		return fail(fmt.Errorf("storage: compact sync: %w", err))
	}

	// Commit: swap in the new state, then retire the old files (each is
	// unlinked once its descriptor closes). Pinned readers keep retired
	// descriptors alive until they release.
	s.segMu.Lock()
	oldSegments := s.segments
	s.segments = newSegments
	s.active = cur
	for _, seg := range oldSegments {
		seg.retire(true)
	}
	s.segMu.Unlock()
	for i := range s.shards {
		s.shards[i].m = newMaps[i]
	}
	s.deadBytes.Store(0)
	return nil
}

// NeedsCompaction reports whether dead bytes exceed both the configured
// floor and half the live bytes — a pragmatic trigger for tools.
func (s *Store) NeedsCompaction() bool {
	st := s.Stats()
	return st.DeadBytes > s.opts.CompactionFloorBytes && st.DeadBytes > st.LiveBytes/2
}
