package storage

import (
	"fmt"
	"os"
)

// Compact rewrites all live records into fresh segments and deletes the
// old files, reclaiming space held by superseded records and tombstones.
// The store remains usable throughout; writes issued while compaction
// holds the lock simply wait (compaction is a stop-the-world pass — the
// corpus workload is build-once/read-many, so pause time is acceptable
// and documented in the bench harness).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}

	oldSegments := s.segments
	oldKeydir := s.keydir

	// Stage new segments under temporary state so a failure mid-compact
	// leaves the original files untouched.
	next := s.active.id + 1
	newSegments := make(map[uint64]*segment)
	newKeydir := make(map[string]keyLoc, len(oldKeydir))

	var cur *segment
	newSegment := func() error {
		path := segmentPath(s.dir, next)
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("storage: compact creating segment: %w", err)
		}
		cur = &segment{id: next, path: path, f: f}
		newSegments[next] = cur
		next++
		return nil
	}
	fail := func(err error) error {
		for _, seg := range newSegments {
			seg.f.Close()
			os.Remove(seg.path)
		}
		return err
	}
	if err := newSegment(); err != nil {
		return fail(err)
	}

	var buf []byte
	for key, loc := range oldKeydir {
		src := oldSegments[loc.segID]
		raw := make([]byte, loc.length)
		if _, err := src.f.ReadAt(raw, loc.offset); err != nil {
			return fail(fmt.Errorf("storage: compact reading %q: %w", key, err))
		}
		buf = raw
		off := cur.size
		if _, err := cur.f.WriteAt(buf, off); err != nil {
			return fail(fmt.Errorf("storage: compact writing %q: %w", key, err))
		}
		cur.size += int64(len(buf))
		newKeydir[key] = keyLoc{segID: cur.id, offset: off, length: loc.length, valLen: loc.valLen}
		if cur.size >= s.opts.MaxSegmentBytes {
			if err := cur.f.Sync(); err != nil {
				return fail(fmt.Errorf("storage: compact sync: %w", err))
			}
			if err := newSegment(); err != nil {
				return fail(err)
			}
		}
	}
	if err := cur.f.Sync(); err != nil {
		return fail(fmt.Errorf("storage: compact sync: %w", err))
	}

	// Commit: swap in the new state, then remove the old files.
	s.segments = newSegments
	s.keydir = newKeydir
	s.active = cur
	s.deadBytes = 0
	for _, seg := range oldSegments {
		seg.f.Close()
		os.Remove(seg.path)
	}
	return nil
}

// NeedsCompaction reports whether dead bytes exceed both the configured
// floor and half the live bytes — a pragmatic trigger for tools.
func (s *Store) NeedsCompaction() bool {
	st := s.Stats()
	return st.DeadBytes > s.opts.CompactionFloorBytes && st.DeadBytes > st.LiveBytes/2
}
