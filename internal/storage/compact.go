package storage

import (
	"errors"
	"fmt"
	"os"
	"sort"
)

// Incremental compaction. compactSegments rewrites the live records of
// a set of sealed victim segments into fresh output segments while
// reads and writes keep flowing: the victims are immutable, so the scan
// and copy phases hold no locks at all; the key directory is flipped
// afterward one shard at a time with a per-key compare-and-swap, so a
// record a writer superseded mid-copy simply stays garbage in the
// output. Crash safety comes from the manifest protocol (manifest.go):
// outputs are staged as *.seg.tmp, fsynced, committed by an atomic
// manifest write that also sentences the victims, then renamed into
// place — a crash at any step recovers to exactly the pre- or
// post-compaction segment set.
//
// Phases, with the on-crash outcome of each:
//
//  1. scan victims, plan copies        — nothing on disk, pre-state
//  2. write + fsync staged outputs     — orphaned *.seg.tmp, deleted at
//     Open, pre-state
//  3. commit manifest                  — THE commit point: before the
//     rename lands, pre-state; after, post-state
//  4. rename outputs into place        — rolled forward at Open
//  5. register outputs, flip keydir    — in-memory only
//  6. retire victims (unlink at drain) — Drop list unlinks at Open
//
// ErrCompactorWedged marks a store whose compaction failed after the
// manifest committed (phase 4+): the in-memory segment set no longer
// matches the manifest's promise, so further compactions are refused
// until the store is reopened (Open reconciles the directory).
var ErrCompactorWedged = errors.New("storage: compactor wedged by a post-commit failure; reopen to recover")

// victimRec is the newest record for one key within the victim set.
type victimRec struct {
	seg       *segment
	off       int64
	length    int64
	valLen    int
	tombstone bool
}

// copyPlan is one record scheduled for rewriting, and where it landed.
type copyPlan struct {
	key    string
	src    victimRec
	out    *segment
	newOff int64
}

// segOrder is the replay merge order: ascending (rank, id).
func segOrder(a, b *segment) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.id < b.id
}

// compactSegments runs one incremental compaction over victims. Caller
// holds compactMu; victims must be sealed (never the active segment).
func (s *Store) compactSegments(victims []*segment) error {
	if len(victims) == 0 {
		return nil
	}
	sort.Slice(victims, func(i, j int) bool { return segOrder(victims[i], victims[j]) })
	maxRank := uint64(0)
	victimIDs := make(map[uint64]bool, len(victims))
	for _, v := range victims {
		if v.rank > maxRank {
			maxRank = v.rank
		}
		victimIDs[v.id] = true
	}

	// Pin the victims so concurrent Close cannot yank descriptors.
	s.segMu.RLock()
	for _, v := range victims {
		v.acquire()
	}
	s.segMu.RUnlock()
	defer func() {
		for _, v := range victims {
			v.release()
		}
	}()

	// Phase 1a: one sequential sweep per victim, in merge order, keeping
	// the newest record per key within the set.
	last := make(map[string]victimRec)
	for _, v := range victims {
		_, err := scanSegment(v.path, false, func(rec record, off, length int64) error {
			last[string(rec.key)] = victimRec{
				seg: v, off: off, length: length,
				valLen: len(rec.value), tombstone: rec.tombstone,
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("storage: compacting segment %d: %w", v.id, err)
		}
	}

	// Phase 1b: decide what survives. A value record survives if the
	// key directory still points exactly at it. A tombstone survives
	// only while some non-victim segment ordered before it could hold
	// an older version of the key that the tombstone must keep dead —
	// and only if no later put made the tombstone moot.
	minSurvivor := s.minSurvivingOrder(victimIDs)
	plan := make([]copyPlan, 0, len(last))
	for key, vr := range last {
		if vr.tombstone {
			if s.shardFor(key).has(key) {
				continue // a later put superseded the tombstone
			}
			if minSurvivor == nil || !orderBefore(minSurvivor, vr.seg) {
				continue // nothing older survives for it to suppress
			}
			plan = append(plan, copyPlan{key: key, src: vr})
			continue
		}
		sh := s.shardFor(key)
		sh.mu.RLock()
		loc, ok := sh.m[key]
		sh.mu.RUnlock()
		if ok && loc.segID == vr.seg.id && loc.offset == vr.off {
			plan = append(plan, copyPlan{key: key, src: vr})
		}
	}
	sort.Slice(plan, func(i, j int) bool {
		a, b := plan[i].src, plan[j].src
		if a.seg != b.seg {
			return segOrder(a.seg, b.seg)
		}
		return a.off < b.off
	})

	return s.rewritePlan(victims, victimIDs, plan, maxRank)
}

// rewritePlan runs phases 2–6 of a segment rewrite: stage outputs,
// commit the manifest, rename, publish, flip the key directory, retire
// the victims. Shared by compaction (plan = surviving records from a
// full victim scan) and scrub salvage (plan = keydir-verified records
// of a corrupt segment). Caller holds compactMu and has pinned the
// victims; plan must be sorted in (seg order, offset) order.
func (s *Store) rewritePlan(victims []*segment, victimIDs map[uint64]bool, plan []copyPlan, maxRank uint64) error {
	// Phase 2: write the staged outputs.
	outputs, err := s.writeCompactionOutputs(plan, maxRank)
	if err != nil {
		s.discardOutputs(outputs)
		return err
	}

	// Phase 3: the commit point. The manifest ranks the outputs into
	// the victims' replay position and sentences the victims. A failure
	// after the manifest rename may still be durable, so the outputs
	// must NOT be discarded — deleting them while a committed manifest
	// sentences the victims would lose data at the next Open. Wedge
	// instead; Open reconciles either way.
	man := s.stageManifest(outputs, victims, maxRank)
	committed, err := s.writeManifest(man)
	if err != nil {
		if committed {
			s.compactor.wedged.Store(true)
			return err
		}
		s.discardOutputs(outputs)
		return err
	}
	s.man = man

	// Phase 4: move outputs to their real names. Failure past the
	// commit point wedges the compactor; Open reconciles from the
	// manifest (rolling half-renamed outputs forward).
	for _, o := range outputs {
		if err := s.fs.rename(segmentTmpPath(s.dir, o.id), o.path); err != nil {
			s.compactor.wedged.Store(true)
			return fmt.Errorf("storage: placing compaction output: %w", err)
		}
	}
	if err := s.fs.syncDir(s.dir); err != nil {
		s.compactor.wedged.Store(true)
		return fmt.Errorf("storage: syncing dir after compaction: %w", err)
	}

	// Phase 5: publish the outputs, then flip the key directory one
	// shard at a time. A per-key CAS keeps flips correct against
	// concurrent writers: an entry that moved on is left alone and the
	// copy is charged to the output as garbage. Outputs are mapped
	// before registration — they are sealed by construction, so the
	// first reader to resolve one already gets the zero-syscall path.
	for _, o := range outputs {
		s.mapSegment(o)
	}
	s.segMu.Lock()
	if s.closed.Load() {
		s.segMu.Unlock()
		s.compactor.wedged.Store(true)
		// The outputs are durable and committed — the next Open rolls
		// them in — but they will never be registered in this process,
		// so release their descriptors and mappings instead of leaking
		// them until exit. No reader can hold a pin: they were never
		// published.
		for _, o := range outputs {
			o.retire(false)
		}
		return ErrClosed
	}
	for _, o := range outputs {
		s.segments[o.id] = o
	}
	s.segMu.Unlock()
	s.flipKeydir(plan)

	// Phase 6: retire the victims; each unlinks once pinned readers
	// drain. reclaimed is the net on-disk shrink. Cached values read
	// from a victim are dropped with it — they are still byte-correct
	// (compaction copies records verbatim), but evicting them bounds
	// how long a retired segment's bytes stay resident.
	var reclaimed int64
	s.segMu.Lock()
	for _, v := range victims {
		delete(s.segments, v.id)
		reclaimed += v.size
		v.removeFn = s.fs.remove
		v.retire(true)
	}
	s.segMu.Unlock()
	if s.cache != nil {
		s.cache.invalidateSegments(victimIDs)
	}
	for _, o := range outputs {
		reclaimed -= o.size
	}
	s.cstats.runs.Add(1)
	s.cstats.segments.Add(uint64(len(victims)))
	s.cstats.reclaimed.Add(reclaimed)
	return nil
}

// minSurvivingOrder returns the earliest (rank, id) non-victim segment,
// or nil when the victims are a prefix of the whole log (then no older
// segment can resurrect a key and tombstones may drop).
func (s *Store) minSurvivingOrder(victimIDs map[uint64]bool) *segment {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	var min *segment
	for _, seg := range s.segments {
		if victimIDs[seg.id] {
			continue
		}
		if min == nil || segOrder(seg, min) {
			min = seg
		}
	}
	return min
}

// orderBefore reports whether a replays before b.
func orderBefore(a, b *segment) bool { return segOrder(a, b) }

// writeCompactionOutputs streams the planned records into staged
// (*.seg.tmp) output segments, rotating at MaxSegmentBytes, batching
// bytes into chunked writes, and fsyncing every output before
// returning. plan entries are annotated with their new location.
func (s *Store) writeCompactionOutputs(plan []copyPlan, rank uint64) ([]*segment, error) {
	var outputs []*segment
	var out *segment
	chunk := make([]byte, 0, compactChunkBytes)
	var chunkStart int64
	flush := func() error {
		if out == nil || len(chunk) == 0 {
			return nil
		}
		if _, err := out.f.WriteAt(chunk, chunkStart); err != nil {
			return fmt.Errorf("storage: writing compaction output: %w", err)
		}
		chunkStart += int64(len(chunk))
		chunk = chunk[:0]
		return nil
	}
	var raw []byte
	for i := range plan {
		p := &plan[i]
		if out == nil || out.size >= s.opts.MaxSegmentBytes {
			if err := flush(); err != nil {
				return outputs, err
			}
			id := s.nextSegID.Add(1)
			f, err := s.fs.create(segmentTmpPath(s.dir, id))
			if err != nil {
				return outputs, fmt.Errorf("storage: creating compaction output: %w", err)
			}
			out = &segment{id: id, path: segmentPath(s.dir, id), f: f, rank: rank}
			outputs = append(outputs, out)
			chunkStart = 0
		}
		if int64(cap(raw)) < p.src.length {
			raw = make([]byte, p.src.length)
		}
		raw = raw[:p.src.length]
		if _, err := p.src.seg.f.ReadAt(raw, p.src.off); err != nil {
			return outputs, fmt.Errorf("storage: compact reading %q: %w", p.key, err)
		}
		p.out, p.newOff = out, out.size
		chunk = append(chunk, raw...)
		out.size += p.src.length
		if p.src.tombstone {
			// A preserved tombstone is still garbage by the byte
			// accounting: reclaimable as soon as its elders go.
			out.dead.Add(p.src.length)
		}
		if len(chunk) >= compactChunkBytes {
			if err := flush(); err != nil {
				return outputs, err
			}
		}
	}
	if err := flush(); err != nil {
		return outputs, err
	}
	for _, o := range outputs {
		if err := o.f.Sync(); err != nil {
			return outputs, fmt.Errorf("storage: syncing compaction output: %w", err)
		}
		o.syncedSize.Store(o.size)
	}
	return outputs, nil
}

// compactChunkBytes bounds one coalesced output write.
const compactChunkBytes = 1 << 20

// stageManifest builds the successor manifest for a compaction: output
// ranks added, victims sentenced, entries for long-gone segments
// pruned.
func (s *Store) stageManifest(outputs, victims []*segment, rank uint64) manifest {
	man := s.man.clone()
	keep := make(map[uint64]bool, len(outputs))
	s.segMu.RLock()
	for id := range s.segments {
		keep[id] = true
	}
	s.segMu.RUnlock()
	for _, v := range victims {
		delete(keep, v.id)
	}
	for _, o := range outputs {
		keep[o.id] = true
	}
	for id := range man.Ranks {
		if !keep[id] {
			delete(man.Ranks, id)
		}
	}
	for _, o := range outputs {
		man.Ranks[o.id] = rank
	}
	// Carry forward sentenced segments whose files still exist: a
	// pinned reader (or a failed unlink) can keep an earlier victim on
	// disk past the next compaction, and dropping it from the list
	// would let a crash replay it as live — resurrecting keys whose
	// tombstones earlier compactions already folded away.
	var drop []uint64
	for _, id := range man.Drop {
		if _, err := os.Stat(segmentPath(s.dir, id)); err == nil {
			drop = append(drop, id)
		}
	}
	for _, v := range victims {
		drop = append(drop, v.id)
	}
	man.Drop = drop
	return man
}

// flipKeydir repoints surviving copies, one shard at a time. Entries a
// concurrent writer moved past fail the CAS; their copies become
// garbage in the output they landed in.
func (s *Store) flipKeydir(plan []copyPlan) {
	byShard := make(map[int][]*copyPlan)
	for i := range plan {
		p := &plan[i]
		if p.src.tombstone || p.out == nil {
			continue
		}
		idx := s.shardIndex(p.key)
		byShard[idx] = append(byShard[idx], p)
	}
	for idx, ps := range byShard {
		sh := &s.shards[idx]
		sh.mu.Lock()
		for _, p := range ps {
			cur, ok := sh.m[p.key]
			if ok && cur.segID == p.src.seg.id && cur.offset == p.src.off {
				sh.m[p.key] = keyLoc{
					segID:  p.out.id,
					offset: p.newOff,
					length: p.src.length,
					valLen: p.src.valLen,
				}
			} else {
				p.out.dead.Add(p.src.length)
			}
		}
		sh.mu.Unlock()
	}
}

// discardOutputs best-effort deletes staged outputs after a
// pre-commit failure. When the failure is a simulated crash the
// removes fail too, leaving the orphans for Open to clean — exactly
// what a real crash leaves behind.
func (s *Store) discardOutputs(outputs []*segment) {
	for _, o := range outputs {
		o.f.Close()
		s.fs.remove(segmentTmpPath(s.dir, o.id))
	}
}

// Compact runs one full incremental pass: it seals the active segment,
// then rewrites every sealed segment, reclaiming all superseded records
// and tombstones. Unlike the pre-incremental engine this does not stop
// the world — reads and writes proceed throughout; only the brief
// rotation holds the commit token.
func (s *Store) Compact() error {
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	if s.closed.Load() {
		return ErrClosed
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if s.compactor.wedged.Load() {
		return ErrCompactorWedged
	}
	// A degraded write path refuses explicit compaction too: rotation
	// would seal (and fsync) the poisoned active segment, and output
	// writes would hit the same failing disk. Recover first.
	if err := s.writeGate(); err != nil {
		return err
	}

	// Seal the active segment (if it holds anything) so its garbage is
	// collectable too.
	s.commitTok <- struct{}{}
	if s.closed.Load() {
		<-s.commitTok
		return ErrClosed
	}
	var rerr error
	if s.active.size > 0 {
		rerr = s.rotate()
		if rerr != nil && !errors.Is(rerr, ErrClosed) {
			// Same contract as a commit-path failure: the active segment
			// is poisoned and mutations wedge until recovery rotates
			// away from it (a failed seal fsync must never be retried).
			s.degradeWrites(rerr)
		}
	}
	<-s.commitTok
	if rerr != nil {
		return rerr
	}

	s.segMu.RLock()
	active := s.active
	victims := make([]*segment, 0, len(s.segments)-1)
	for _, seg := range s.segments {
		if seg != active {
			victims = append(victims, seg)
		}
	}
	s.segMu.RUnlock()
	return s.compactSegments(victims)
}

// NeedsCompaction reports whether dead bytes exceed both the configured
// floor and half the live bytes — a pragmatic trigger for tools.
func (s *Store) NeedsCompaction() bool {
	st := s.Stats()
	return st.DeadBytes > s.opts.CompactionFloorBytes && st.DeadBytes > st.LiveBytes/2
}
