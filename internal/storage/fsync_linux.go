//go:build linux

package storage

import (
	"os"
	"syscall"
)

// datasync flushes f's appended bytes plus the minimum metadata needed
// to read them back (notably the file size), skipping the full inode
// journal commit an fsync pays for timestamps and the block map. With
// preallocated segments the block map never changes between group
// commits, so the durable-write hot path is reduced to the data flush
// alone.
func datasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}

// preallocate reserves and extends f to size bytes up front, so
// appends inside the region change neither the block map nor the file
// size — the metadata that would otherwise still hit the journal on
// every fdatasync. The zero-filled tail past the logical end is
// invisible to readers (the keydir never points there) and is trimmed
// at seal/Close; after a crash, tail repair truncates it away instead
// of replaying it (zero bytes never decode as a record: the key length
// is zero, which framing rejects).
func preallocate(f *os.File, size int64) error {
	if size <= 0 {
		return nil
	}
	for {
		err := syscall.Fallocate(int(f.Fd()), 0, 0, size)
		switch err {
		case syscall.EINTR:
			continue
		case syscall.EOPNOTSUPP, syscall.ENOSYS, syscall.EINVAL:
			// Filesystems without fallocate (some tmpfs/network
			// mounts): preallocation is an optimization only, appends
			// still extend the file exactly as before.
			return nil
		case syscall.ENOSPC, syscall.EDQUOT:
			// Not enough room to reserve the whole segment up front.
			// The records about to be appended may still fit fine, so
			// degrade to unpreallocated appends rather than failing
			// writes a fuller-featured disk would have taken.
			return nil
		}
		return err
	}
}
