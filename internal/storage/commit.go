package storage

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
)

// Group commit. Writers frame their record (CRC and all) outside any
// lock, join the pending commit group, and race for the commit token.
// Whoever wins becomes the leader: it snapshots the pending group,
// concatenates every framed record, appends them with one WriteAt and —
// when SyncEveryPut is set — one Sync, then applies the key-directory
// updates and wakes the whole group. Writers that arrive while a commit
// is in flight pile into the next group, so fsync and syscall costs
// amortize across concurrent callers while each call still returns only
// after its record is durable to the configured level.

// commitReq is one writer's record inside a commit group.
type commitReq struct {
	key    string
	rec    record
	framed []byte
	// skip marks a redundant tombstone: the leader's serialized
	// presence check found the key already absent, so nothing is
	// logged and the delete is a successful no-op.
	skip bool
	// written marks that the record's bytes reached the segment file;
	// synced marks that an fsync covering them succeeded. A record is
	// applied to the key directory only when written and — under
	// SyncEveryPut — synced: an unsynced record would otherwise be
	// visible despite its caller being told the write failed.
	written bool
	synced  bool
	// err is this request's outcome, set by the leader: nil exactly when
	// the record was applied (or resolved as a no-op), the batch error
	// otherwise. Requests in one group can differ — a mid-batch fault
	// fails only the records that did not reach the configured
	// durability level.
	err error
	// Location assigned by the leader for logged records.
	segID  uint64
	off    int64
	length int64
}

// result is what submit returns to this request's caller.
func (r *commitReq) result() error {
	if r.skip {
		return nil
	}
	return r.err
}

// applied reports whether the record reached the key directory.
func (r *commitReq) applied(syncEvery bool) bool {
	return !r.skip && r.written && (r.synced || !syncEvery)
}

// commitGroup is a batch of requests committed by one leader.
type commitGroup struct {
	reqs []*commitReq
	done chan struct{}
	err  error
}

// framePool recycles record-framing buffers across writers.
var framePool = sync.Pool{New: func() interface{} { return new([]byte) }}

// logRecord frames rec and drives it through the group-commit protocol.
func (s *Store) logRecord(key string, rec record) error {
	bufp := framePool.Get().(*[]byte)
	framed, err := appendRecord((*bufp)[:0], rec)
	if err != nil {
		framePool.Put(bufp)
		return err
	}
	req := &commitReq{key: key, rec: rec, framed: framed}
	err = s.submit(req)
	*bufp = framed[:0]
	framePool.Put(bufp)
	return err
}

// submit drives req through group commit and waits until some leader
// (possibly this goroutine) has committed the group containing it.
func (s *Store) submit(req *commitReq) error {
	// Fast-fail while the write path is degraded; the commit leader
	// re-checks under the token, so this is advisory only.
	if err := s.writeGate(); err != nil {
		return err
	}
	select {
	case s.commitTok <- struct{}{}:
		// Leader fast path. When the previous commit saw concurrent
		// writers, yield once so writers made runnable by that commit
		// can join this batch — without this, small-GOMAXPROCS
		// schedulers let one goroutine monopolize the token and every
		// batch degenerates to a single record (a blocking fsync does
		// not reliably hand the P to parked writers). The yield is
		// adaptive because it is wasted latency when this writer is
		// alone: a Gosched behind CPU-bound readers can stall for their
		// whole scheduler quantum.
		if s.grouping {
			runtime.Gosched()
		}
		s.pendMu.Lock()
		g := s.pending
		s.pending = nil
		if g == nil {
			g = &commitGroup{} // solo commit: nobody to signal
		}
		g.reqs = append(g.reqs, req)
		s.pendMu.Unlock()
		s.grouping = len(g.reqs) > 1
		g.err = s.commit(g)
		if g.done != nil {
			close(g.done)
		}
		<-s.commitTok
		return req.result()
	default:
	}

	// A commit is in flight: queue into the pending group, then wait —
	// racing for the token in case the current leader's batch detached
	// before our request joined.
	s.pendMu.Lock()
	if s.closed.Load() {
		s.pendMu.Unlock()
		return ErrClosed
	}
	g := s.pending
	if g == nil {
		g = &commitGroup{done: make(chan struct{})}
		s.pending = g
	}
	g.reqs = append(g.reqs, req)
	s.pendMu.Unlock()

	select {
	case s.commitTok <- struct{}{}:
		// Leader: commit whatever group is pending now. That is usually
		// our own; if another leader already took it, we help by
		// committing the successor batch.
		s.commitNext()
		<-s.commitTok
	case <-g.done:
	}
	<-g.done
	return req.result()
}

// commitNext detaches the pending group and commits it. Caller holds
// the commit token. Reaching this path at all means the token was
// contended, so future leaders should pause for company.
func (s *Store) commitNext() {
	s.grouping = true
	s.pendMu.Lock()
	g := s.pending
	s.pending = nil
	s.pendMu.Unlock()
	if g == nil {
		return
	}
	g.err = s.commit(g)
	close(g.done)
}

// commit appends one group to the log and applies it to the key
// directory. Caller holds the commit token, so this is the only
// goroutine mutating the active segment or shard maps.
//
// Failure semantics: a record is applied to the key directory exactly
// when its caller is acknowledged — its bytes reached the file and,
// under SyncEveryPut, an fsync covering them succeeded. A mid-batch
// fault therefore splits the group: the prefix that reached the
// configured durability level is applied and those callers get nil;
// every other caller gets the error and its record is never visible
// (recovery trims the bytes; see health.go). Without SyncEveryPut the
// ack level is "written", the usual WAL contract — visibility on ack,
// durability at the next successful sync. Any I/O failure also
// poisons the active segment and degrades the store to read-only
// until recovery rotates a fresh segment (degradeWrites).
func (s *Store) commit(g *commitGroup) error {
	err := s.writeGate()
	if err == nil {
		err = s.appendGroup(g)
		if err != nil && !errors.Is(err, ErrClosed) {
			s.degradeWrites(err)
		}
	}
	s.applyGroup(g)
	if err != nil {
		for _, req := range g.reqs {
			if !req.applied(s.opts.SyncEveryPut) {
				req.err = err
			}
		}
	}
	return err
}

// appendGroup resolves redundant tombstones and appends the group's
// records to the log, marking each request whose bytes were written.
func (s *Store) appendGroup(g *commitGroup) error {
	if s.closed.Load() {
		return ErrClosed
	}

	// Pass 1: resolve redundant tombstones against the serialized view:
	// shard state plus the effect of earlier requests in this batch.
	var effects map[string]bool // key -> present after the processed prefix
	for i, req := range g.reqs {
		if !req.rec.tombstone {
			if effects != nil {
				effects[req.key] = true
			}
			continue
		}
		if effects == nil {
			effects = make(map[string]bool, len(g.reqs))
			for _, p := range g.reqs[:i] {
				effects[p.key] = true // only puts precede the first tombstone
			}
		}
		present, tracked := effects[req.key]
		if !tracked {
			present = s.shardFor(req.key).has(req.key)
		}
		if !present {
			req.skip = true
			continue
		}
		effects[req.key] = false
	}

	// Pass 2: assign locations and append, one WriteAt per chunk. A
	// chunk ends when the active segment fills (same rotate-after-write
	// semantics as a serial append: a record never splits, the segment
	// may overshoot by the final record).
	order := make([]*commitReq, 0, len(g.reqs))
	for _, req := range g.reqs {
		if !req.skip {
			order = append(order, req)
		}
	}
	chunk := s.commitBuf[:0]
	chunkStart := s.active.size
	chunkFirst := 0   // index in order of the first record in the open chunk
	unsynced := false // becomes true once written bytes lack a covering sync
	flush := func(upTo int) error {
		if len(chunk) == 0 {
			return nil
		}
		if _, err := s.active.f.WriteAt(chunk, chunkStart); err != nil {
			return fmt.Errorf("storage: appending batch: %w", err)
		}
		s.active.size = chunkStart + int64(len(chunk))
		for _, r := range order[chunkFirst:upTo] {
			r.written = true
		}
		chunkFirst = upTo
		chunk = chunk[:0]
		unsynced = true
		return nil
	}
	// markSynced records that every written request is now covered by a
	// successful fsync (rotation's seal or the final group sync).
	markSynced := func() {
		for _, r := range order {
			if r.written {
				r.synced = true
			}
		}
		unsynced = false
	}
	for i, req := range order {
		req.segID = s.active.id
		req.off = chunkStart + int64(len(chunk))
		req.length = int64(len(req.framed))
		chunk = append(chunk, req.framed...)
		if chunkStart+int64(len(chunk)) >= s.opts.MaxSegmentBytes {
			if err := flush(i + 1); err != nil {
				s.stashCommitBuf(chunk)
				return err
			}
			if err := s.rotate(); err != nil { // syncs the sealed segment
				s.stashCommitBuf(chunk)
				return err
			}
			markSynced()
			chunkStart = 0
		}
	}
	err := flush(len(order))
	s.stashCommitBuf(chunk)
	if err != nil {
		return err
	}
	if s.opts.SyncEveryPut && unsynced {
		if err := s.syncActive(); err != nil {
			s.active.syncFailed.Store(true)
			return fmt.Errorf("storage: fsync: %w", err)
		}
		s.active.syncedSize.Store(s.active.size)
		markSynced()
	}
	return nil
}

// syncActive flushes the active segment's appended bytes — the
// group-commit hot path. On linux this is fdatasync: with preallocated
// segments the inode is untouched between batches, so the flush skips
// the metadata journal entirely (~20% off a small-batch commit on
// ext4). Elsewhere, and for test seams that are not *os.File, it is a
// plain fsync.
func (s *Store) syncActive() error {
	if ef, ok := s.active.f.(*errFile); ok {
		// Injected files take the datasync fast path too, but the
		// injector must see the op first or FaultSync could never hit
		// the group-commit sync.
		if err, _ := ef.i.check(FaultSync); err != nil {
			return err
		}
		return datasync(ef.f)
	}
	if f, ok := s.active.f.(*os.File); ok {
		return datasync(f)
	}
	return s.active.f.Sync()
}

// applyGroup applies the acknowledged records' key-directory updates
// in log order. Requests that never reached the file (skipped
// tombstones, records after a failed flush) are left out, as are
// written records whose covering fsync failed under SyncEveryPut —
// their callers are told the write failed, so showing the record to
// readers would acknowledge it through the back door.
func (s *Store) applyGroup(g *commitGroup) {
	syncEvery := s.opts.SyncEveryPut
	for _, req := range g.reqs {
		if !req.applied(syncEvery) {
			continue
		}
		sh := s.shardFor(req.key)
		sh.mu.Lock()
		if prev, ok := sh.m[req.key]; ok {
			s.addDead(prev.segID, prev.length)
		}
		if req.rec.tombstone {
			delete(sh.m, req.key)
			// The tombstone itself is reclaimable the moment it lands.
			s.addDead(req.segID, req.length)
		} else {
			sh.m[req.key] = keyLoc{
				segID:  req.segID,
				offset: req.off,
				length: req.length,
				valLen: len(req.rec.value),
			}
		}
		if s.cache != nil {
			// Inside the shard critical section, so cacheFill's
			// verify-then-insert cannot interleave between this update
			// and the invalidation (see cacheFill).
			s.cache.invalidate(req.key)
		}
		sh.mu.Unlock()
	}
}

// addDead charges n garbage bytes to the segment holding a superseded
// record or tombstone. The per-segment counter is the compaction
// victim-selection statistic; it replaces the old store-global estimate
// so the compactor can pick exactly the files worth rewriting. A
// missing segment means compaction retired it concurrently — its
// garbage left with it.
func (s *Store) addDead(segID uint64, n int64) {
	s.segMu.RLock()
	if seg := s.segments[segID]; seg != nil {
		seg.dead.Add(n)
	}
	s.segMu.RUnlock()
}

// commitBufRetainBytes bounds the leader buffer kept across commits; a
// burst of large concurrent values can grow one batch toward the
// segment size, and pinning that forever would cost ~MaxSegmentBytes
// of idle memory per store.
const commitBufRetainBytes = 1 << 20

// stashCommitBuf parks the leader's concatenation buffer for reuse,
// dropping it when a burst grew it past the retain bound.
func (s *Store) stashCommitBuf(chunk []byte) {
	if cap(chunk) > commitBufRetainBytes {
		s.commitBuf = nil
		return
	}
	s.commitBuf = chunk[:0]
}

// rotate seals the active segment and starts a fresh, preallocated
// one. Caller holds the commit token (or is inside single-threaded
// Open). IDs come from the shared nextSegID counter so rotation never
// collides with compaction outputs allocated concurrently.
func (s *Store) rotate() error {
	if s.active != nil {
		if err := s.sealActive(); err != nil {
			return err
		}
	}
	return s.newActiveSegment()
}

// newActiveSegment creates, preallocates and installs a fresh active
// segment without touching its predecessor. rotate seals the old one
// first; write recovery instead leaves the poisoned predecessor in
// place until its salvageable tail has been copied out (health.go).
func (s *Store) newActiveSegment() error {
	next := s.nextSegID.Add(1)
	path := segmentPath(s.dir, next)
	inj := s.opts.FaultInjection
	if inj != nil {
		if err, _ := inj.check(FaultCreate); err != nil {
			return fmt.Errorf("storage: creating segment: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating segment: %w", err)
	}
	if err := preallocate(f, s.opts.MaxSegmentBytes); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("storage: preallocating segment: %w", err)
	}
	// Make the dirent durable before any acknowledged write lands in
	// the new file: fdatasync/fsync of the file alone does not persist
	// its directory entry, and a crash could otherwise drop the whole
	// segment — and every SyncEveryPut write it acknowledged — at Open.
	if err := s.syncDirActive(); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("storage: syncing dir after segment create: %w", err)
	}
	var sf segfile = f
	if inj != nil {
		sf = inj.wrapFile(f)
	}
	seg := &segment{id: next, path: path, f: sf, rank: next}
	s.segMu.Lock()
	s.segments[next] = seg
	s.active = seg
	s.segMu.Unlock()
	return nil
}

// syncDirActive fsyncs the store directory on the write path, routed
// through the injector when one is configured. The compaction seam has
// its own hook (fsOps.syncDir) so the crash harness stays undisturbed.
func (s *Store) syncDirActive() error {
	if inj := s.opts.FaultInjection; inj != nil {
		if err, _ := inj.check(FaultSyncDir); err != nil {
			return err
		}
	}
	return syncDir(s.dir)
}

// sealActive finalizes the active segment on rotation: the
// preallocated tail is trimmed (so neither replay nor a mapping ever
// sees the zero region — the sealed invariant is file size == data
// size), the data is fsynced, and the now-immutable file is mapped for
// the zero-syscall read path. Ordering matters for crash safety: the
// trim and sync land before the successor segment is created, so a
// sealed segment on disk never carries a preallocated tail — only the
// newest segment can, and tail repair at Open truncates it instead of
// replaying it.
func (s *Store) sealActive() error {
	old := s.active
	if f := osFile(old.f); f != nil {
		if err := f.Truncate(old.size); err != nil {
			return fmt.Errorf("storage: trimming sealed segment: %w", err)
		}
	}
	if err := old.f.Sync(); err != nil {
		// The failed fsync forfeits this file: dirty pages may now be
		// marked clean, so a retried fsync could claim durability the
		// disk never provided. Recovery must rotate away from it.
		old.syncFailed.Store(true)
		return fmt.Errorf("storage: syncing sealed segment: %w", err)
	}
	old.syncedSize.Store(old.size)
	s.mapSegment(old)
	return nil
}
