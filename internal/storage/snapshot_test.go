package storage

import (
	"errors"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// testCatalog builds a small deterministic catalog shared by snapshot
// tests.
func testCatalog(t *testing.T) *flavor.Catalog {
	t.Helper()
	cfg := flavor.DefaultConfig()
	catalog, err := flavor.Build(cfg)
	if err != nil {
		t.Fatalf("building catalog: %v", err)
	}
	return catalog
}

// testCorpus assembles a tiny corpus by hand.
func testCorpus(t *testing.T, catalog *flavor.Catalog) *recipedb.Store {
	t.Helper()
	corpus := recipedb.NewStore(catalog)
	names := catalog.Names()
	mustAdd := func(name string, region recipedb.Region, n int, offset int) {
		ids := make([]flavor.ID, n)
		for i := range ids {
			id, ok := catalog.Lookup(names[(offset+i*7)%len(names)])
			if !ok {
				t.Fatalf("lookup %q failed", names[(offset+i*7)%len(names)])
			}
			ids[i] = id
		}
		if _, err := corpus.Add(name, region, recipedb.AllRecipes, ids); err != nil {
			t.Fatalf("Add(%q): %v", name, err)
		}
	}
	mustAdd("pasta al pomodoro", recipedb.Italy, 5, 0)
	mustAdd("miso soup", recipedb.Japan, 4, 40)
	mustAdd("butter chicken", recipedb.IndianSubcontinent, 9, 90)
	mustAdd("tacos al pastor", recipedb.Mexico, 7, 140)
	return corpus
}

func TestRecipeEncodeDecodeRoundTrip(t *testing.T) {
	catalog := testCatalog(t)
	corpus := testCorpus(t, catalog)
	for i := 0; i < corpus.Len(); i++ {
		r := corpus.Recipe(i)
		name, region, source, ids, err := decodeRecipe(encodeRecipe(&r))
		if err != nil {
			t.Fatalf("decode recipe %d: %v", i, err)
		}
		if name != r.Name || region != r.Region || source != r.Source {
			t.Errorf("recipe %d header mismatch: %q/%v/%v", i, name, region, source)
		}
		if len(ids) != len(r.Ingredients) {
			t.Fatalf("recipe %d ids %d, want %d", i, len(ids), len(r.Ingredients))
		}
		for j := range ids {
			if ids[j] != r.Ingredients[j] {
				t.Errorf("recipe %d id[%d] = %d, want %d", i, j, ids[j], r.Ingredients[j])
			}
		}
	}
}

func TestDecodeRecipeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xFF},
		{1, 1, 200}, // name length far beyond remaining bytes
		{1, 1, 1, 'x', 250},
	}
	for i, data := range cases {
		if _, _, _, _, err := decodeRecipe(data); !errors.Is(err, ErrSnapshot) {
			t.Errorf("case %d: err = %v, want ErrSnapshot", i, err)
		}
	}
	// Trailing bytes after a valid body must be rejected.
	catalog := testCatalog(t)
	corpus := testCorpus(t, catalog)
	first := corpus.Recipe(0)
	good := encodeRecipe(&first)
	if _, _, _, _, err := decodeRecipe(append(good, 0)); !errors.Is(err, ErrSnapshot) {
		t.Errorf("trailing byte: err = %v, want ErrSnapshot", err)
	}
}

func TestSaveLoadCorpus(t *testing.T) {
	catalog := testCatalog(t)
	corpus := testCorpus(t, catalog)

	db := openTemp(t, Options{})
	if err := SaveCorpus(db, corpus); err != nil {
		t.Fatalf("SaveCorpus: %v", err)
	}
	loaded, err := LoadCorpus(db, catalog)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if loaded.Len() != corpus.Len() {
		t.Fatalf("loaded %d recipes, want %d", loaded.Len(), corpus.Len())
	}
	for i := 0; i < corpus.Len(); i++ {
		a, b := corpus.Recipe(i), loaded.Recipe(i)
		if a.Name != b.Name || a.Region != b.Region || a.Source != b.Source || a.Size() != b.Size() {
			t.Errorf("recipe %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestSaveCorpusShrinksPriorSnapshot(t *testing.T) {
	catalog := testCatalog(t)
	corpus := testCorpus(t, catalog)
	db := openTemp(t, Options{})
	if err := SaveCorpus(db, corpus); err != nil {
		t.Fatal(err)
	}

	// Save a smaller corpus over it: stale recipe keys must disappear.
	small := recipedb.NewStore(catalog)
	r := corpus.Recipe(0)
	if _, err := small.Add(r.Name, r.Region, r.Source, r.Ingredients); err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpus(db, small); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(db, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Errorf("loaded %d recipes, want 1 (stale keys must be deleted)", loaded.Len())
	}
}

func TestLoadCorpusCatalogMismatch(t *testing.T) {
	catalog := testCatalog(t)
	corpus := testCorpus(t, catalog)
	db := openTemp(t, Options{})
	if err := SaveCorpus(db, corpus); err != nil {
		t.Fatal(err)
	}

	otherCfg := flavor.DefaultConfig()
	otherCfg.Seed++
	other, err := flavor.Build(otherCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(db, other); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("LoadCorpus with mismatched catalog = %v, want ErrSnapshot", err)
	}
}

func TestLoadCorpusRequiresSnapshot(t *testing.T) {
	catalog := testCatalog(t)
	db := openTemp(t, Options{})
	if _, err := LoadCorpus(db, catalog); err == nil {
		t.Fatal("LoadCorpus on empty store succeeded")
	}
	// A wrong format marker is also rejected.
	if err := db.Put(formatKey, []byte("bogus/9")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(db, catalog); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("err = %v, want ErrSnapshot", err)
	}
}

func TestSnapshotSurvivesReopenAndCompact(t *testing.T) {
	catalog := testCatalog(t)
	corpus := testCorpus(t, catalog)
	dir := t.TempDir()
	db, err := Open(dir, Options{MaxSegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpus(db, corpus); err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpus(db, corpus); err != nil { // double save creates dead bytes
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	loaded, err := LoadCorpus(db2, catalog)
	if err != nil {
		t.Fatalf("LoadCorpus after reopen+compact: %v", err)
	}
	if loaded.Len() != corpus.Len() {
		t.Errorf("loaded %d, want %d", loaded.Len(), corpus.Len())
	}
}

// TestMutatedCorpusRoundTrip is the restart story for the mutable
// corpus: save a snapshot, bind the store to the engine, mutate
// through the write-through path (upsert, delete, insert), reopen and
// reload — the reloaded corpus must match slot for slot, including the
// tombstoned gap.
func TestMutatedCorpusRoundTrip(t *testing.T) {
	catalog := testCatalog(t)
	corpus := testCorpus(t, catalog)
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpus(db, corpus); err != nil {
		t.Fatal(err)
	}
	corpus.SetBackend(db)

	// Mutate: replace slot 1, delete slot 2, append a new recipe.
	r0 := corpus.Recipe(0)
	if _, _, _, err := corpus.Upsert(1, "replaced dish", recipedb.France, recipedb.Epicurious, r0.Ingredients); err != nil {
		t.Fatal(err)
	}
	if _, err := corpus.Remove(2); err != nil {
		t.Fatal(err)
	}
	newID, _, _, err := corpus.Upsert(-1, "appended dish", recipedb.Korea, recipedb.TarlaDalal, r0.Ingredients)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	loaded, err := LoadCorpus(db2, catalog)
	if err != nil {
		t.Fatalf("LoadCorpus after mutations: %v", err)
	}
	if loaded.Len() != corpus.Len() || loaded.Slots() != corpus.Slots() {
		t.Fatalf("reload Len/Slots = %d/%d, want %d/%d",
			loaded.Len(), loaded.Slots(), corpus.Len(), corpus.Slots())
	}
	for i := 0; i < corpus.Slots(); i++ {
		a, b := corpus.Recipe(i), loaded.Recipe(i)
		if a.Deleted != b.Deleted {
			t.Errorf("slot %d deleted mismatch: %v vs %v", i, a.Deleted, b.Deleted)
			continue
		}
		if a.Deleted {
			continue
		}
		if a.Name != b.Name || a.Region != b.Region || a.Source != b.Source || a.Size() != b.Size() {
			t.Errorf("slot %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if !loaded.Recipe(2).Deleted {
		t.Error("tombstoned slot 2 revived on reload")
	}
	if got := loaded.Recipe(newID); got.Name != "appended dish" || got.Region != recipedb.Korea {
		t.Errorf("appended recipe reloaded as %+v", got)
	}
	// Region indexes must be rebuilt consistently with the slots.
	if got := loaded.RegionRecipes(recipedb.France); len(got) == 0 {
		t.Error("replaced recipe missing from France index")
	}
}
