package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// segmentExt is the on-disk suffix of data segments. Segment file names
// are zero-padded sequence numbers ("000001.seg") so lexical order is
// creation order.
const segmentExt = ".seg"

// segTmpExt suffixes half-built compaction outputs ("000010.seg.tmp").
// They become real segments only by rename after the manifest commits;
// Open deletes any left by a crash whose manifest never committed.
const segTmpExt = ".tmp"

// segment is one immutable (or, for the newest, append-only) data file.
// Readers pin a segment with acquire/release so compaction and Close
// can retire it without yanking the descriptor out from under an
// in-flight ReadAt: the file closes when the last reference drains.
type segment struct {
	id   uint64
	path string
	f    segfile // opened read-write; sealed segments are only read
	size int64
	// rank is the replay merge-order key (see manifest.go). Equal to id
	// except for compaction outputs, which inherit their victims' rank.
	rank uint64
	// dead counts bytes held by superseded records and tombstones in
	// this file — the garbage statistic compaction selects victims by.
	dead atomic.Int64

	// syncedSize is the byte prefix known durable: advanced only after a
	// successful fsync covering it (group-commit sync, rotation seal,
	// explicit Sync), and set to the on-disk size at replay. Written only
	// under the commit token, like size, but read concurrently by the
	// replication feed (it is the ship watermark — see replication.go),
	// hence atomic. When a write fault poisons the segment, recovery
	// seals it at this boundary — everything beyond is either
	// unacknowledged (SyncEveryPut) or salvaged into a fresh segment
	// first.
	syncedSize atomic.Int64
	// poisoned marks an active segment a write-path operation failed on;
	// no further appends land in it, and write recovery seals it.
	poisoned atomic.Bool
	// syncFailed marks a file whose fsync returned an error. Such a file
	// is never fsynced again: the kernel may have marked its dirty pages
	// clean, so a retried fsync can return success without the bytes
	// being durable (the "fsyncgate" trap). Durability is only restored
	// by writing the bytes to a fresh segment.
	syncFailed atomic.Bool
	// quarantined marks a sealed segment the scrubber found corrupt:
	// excluded from compaction victim selection (its scan would fail)
	// until salvage rewrites what it can and retires it.
	quarantined atomic.Bool
	// scrubs counts completed CRC walks over this segment.
	scrubs atomic.Uint64

	// mapping, when set, is the segment's read-only memory mapping.
	// It is installed exactly once, after the segment seals (rotation,
	// Open, compaction publish) — never while appends can still extend
	// the file — and torn down by closeFile under the same refcount
	// discipline that protects the descriptor: readers pin the segment
	// across their copy out of the mapping, so munmap cannot pull pages
	// out from under an in-flight read.
	mapping atomic.Pointer[mmapRegion]

	refs atomic.Int32
	// removeOnClose is written before the retired store and read only
	// after observing retired, so the atomic orders it.
	removeOnClose bool
	retired       atomic.Bool
	closeOnce     sync.Once
	// removeFn unlinks the file at close when removeOnClose is set; it
	// is the store's fs.remove hook so the crash harness can fail it.
	removeFn func(path string) error
}

// mmapRegion wraps a mapping so it can sit behind an atomic.Pointer.
type mmapRegion struct {
	data []byte
}

// mapped returns the segment's read-only mapping, or nil when the
// segment is unmapped (still active, mmap disabled, or platform
// without support). Safe to call concurrently with sealing.
func (g *segment) mapped() []byte {
	if m := g.mapping.Load(); m != nil {
		return m.data
	}
	return nil
}

// acquire pins the segment. Callers must hold segMu (either mode) so a
// concurrent retire — which requires segMu exclusively — cannot
// interleave.
func (g *segment) acquire() { g.refs.Add(1) }

// release unpins the segment, closing (and possibly removing) the file
// if it was retired and this was the last reader.
func (g *segment) release() {
	if g.refs.Add(-1) == 0 && g.retired.Load() {
		g.closeFile() // error unreportable from a reader; see retire
	}
}

// retire marks the segment dead, reporting the close error when the
// file closes synchronously (no pinned readers). Caller holds segMu
// exclusively, so no new acquires can race; otherwise the file closes
// when the last pinned reader releases. With removeFile, the file is
// also unlinked at close time — after the descriptor is closed, so
// platforms that refuse to unlink open files (Windows) work too. A
// file that survives a crash in this window replays harmlessly:
// compaction output has higher segment IDs and overrides it.
func (g *segment) retire(removeFile bool) error {
	g.removeOnClose = removeFile
	g.retired.Store(true)
	if g.refs.Load() == 0 {
		return g.closeFile()
	}
	return nil
}

func (g *segment) closeFile() error {
	var err error
	g.closeOnce.Do(func() {
		if m := g.mapping.Swap(nil); m != nil {
			munmapFile(m.data) // refs drained: no reader can touch the pages
		}
		err = g.f.Close()
		if g.removeOnClose {
			remove := g.removeFn
			if remove == nil {
				remove = os.Remove
			}
			remove(g.path)
		}
	})
	return err
}

// garbageRatio is the fraction of this segment's bytes held by
// superseded records and tombstones.
func (g *segment) garbageRatio() float64 {
	if g.size <= 0 {
		return 0
	}
	return float64(g.dead.Load()) / float64(g.size)
}

// segmentPath renders the file path for a segment ID.
func segmentPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d%s", id, segmentExt))
}

// parseSegmentID extracts the ID from a segment file name, reporting
// whether the name is a well-formed segment name.
func parseSegmentID(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segmentExt) {
		return 0, false
	}
	base := strings.TrimSuffix(name, segmentExt)
	if len(base) != 8 {
		return 0, false
	}
	id, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// segmentTmpPath renders the staging path a compaction output is
// written to before the manifest commits.
func segmentTmpPath(dir string, id uint64) string {
	return segmentPath(dir, id) + segTmpExt
}

// listSegments returns the segment IDs present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ids, _, err := scanDir(dir)
	return ids, err
}

// scanDir classifies the store directory into committed segment IDs and
// half-built compaction outputs (*.seg.tmp), both ascending.
func scanDir(dir string) (ids, tmps []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: reading dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, segmentExt+segTmpExt) {
			if id, ok := parseSegmentID(strings.TrimSuffix(name, segTmpExt)); ok {
				tmps = append(tmps, id)
			}
			continue
		}
		if id, ok := parseSegmentID(name); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sort.Slice(tmps, func(i, j int) bool { return tmps[i] < tmps[j] })
	return ids, tmps, nil
}

// scanSegment replays one segment file, invoking fn for every decoded
// record with its offset and on-disk length. When repairTail is true
// (only ever the newest segment), a corrupt tail is truncated away —
// the recovery path after a crash mid-append; otherwise corruption is an
// error.
func scanSegment(path string, repairTail bool, fn func(rec record, off, length int64) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("storage: opening segment: %w", err)
	}
	defer f.Close()

	rr := newRecordReader(f)
	for {
		off := rr.offset()
		rec, err := rr.next()
		if err == io.EOF {
			return off, nil
		}
		if err != nil {
			if repairTail {
				// Torn final write: discard everything from the bad
				// record onward and resume appending there.
				if terr := os.Truncate(path, off); terr != nil {
					return 0, fmt.Errorf("storage: truncating torn tail: %w", terr)
				}
				return off, nil
			}
			return 0, fmt.Errorf("storage: segment %s at offset %d: %w", filepath.Base(path), off, err)
		}
		if err := fn(rec, off, rr.offset()-off); err != nil {
			return 0, err
		}
	}
}
