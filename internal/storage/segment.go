package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// segmentExt is the on-disk suffix of data segments. Segment file names
// are zero-padded sequence numbers ("000001.seg") so lexical order is
// creation order.
const segmentExt = ".seg"

// segment is one immutable (or, for the newest, append-only) data file.
type segment struct {
	id   uint64
	path string
	f    *os.File // opened read-only for sealed segments, read-write for active
	size int64
}

// segmentPath renders the file path for a segment ID.
func segmentPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d%s", id, segmentExt))
}

// parseSegmentID extracts the ID from a segment file name, reporting
// whether the name is a well-formed segment name.
func parseSegmentID(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segmentExt) {
		return 0, false
	}
	base := strings.TrimSuffix(name, segmentExt)
	if len(base) != 8 {
		return 0, false
	}
	id, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// listSegments returns the segment IDs present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: reading dir: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if id, ok := parseSegmentID(e.Name()); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// scanSegment replays one segment file, invoking fn for every decoded
// record with its offset and on-disk length. When repairTail is true
// (only ever the newest segment), a corrupt tail is truncated away —
// the recovery path after a crash mid-append; otherwise corruption is an
// error.
func scanSegment(path string, repairTail bool, fn func(rec record, off, length int64) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("storage: opening segment: %w", err)
	}
	defer f.Close()

	rr := newRecordReader(f)
	for {
		off := rr.offset()
		rec, err := rr.next()
		if err == io.EOF {
			return off, nil
		}
		if err != nil {
			if repairTail {
				// Torn final write: discard everything from the bad
				// record onward and resume appending there.
				if terr := os.Truncate(path, off); terr != nil {
					return 0, fmt.Errorf("storage: truncating torn tail: %w", terr)
				}
				return off, nil
			}
			return 0, fmt.Errorf("storage: segment %s at offset %d: %w", filepath.Base(path), off, err)
		}
		if err := fn(rec, off, rr.offset()-off); err != nil {
			return 0, err
		}
	}
}
