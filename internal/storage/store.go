package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store errors.
var (
	// ErrNotFound is returned by Get for absent keys.
	ErrNotFound = errors.New("storage: key not found")
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("storage: store is closed")
	// ErrReadOnly is returned by mutating operations on a store opened
	// with Options.ReadOnly (a replica follower's replayed mirror).
	ErrReadOnly = errors.New("storage: store is read-only")
)

// Options configures a Store. The zero value is usable; fields default
// as documented.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it exceeds this
	// size. Defaults to 8 MiB.
	MaxSegmentBytes int64
	// SyncEveryPut guarantees that when Put/Delete returns, the record
	// is fsynced. Writes that arrive concurrently share one fsync (group
	// commit), so the durability contract costs one Sync per batch, not
	// per call. Defaults to false (sync on rotation/Close/Sync only).
	SyncEveryPut bool
	// CompactionFloorBytes is the minimum dead-byte volume before
	// NeedsCompaction reports true. Defaults to 1 MiB.
	CompactionFloorBytes int64
	// Shards is the number of key-directory partitions, rounded up to a
	// power of two. Readers and writers touching keys on different
	// shards never contend. Defaults to 64.
	Shards int
	// ReplayWorkers bounds the goroutines scanning segments in parallel
	// during Open. 1 forces serial replay; defaults to GOMAXPROCS.
	ReplayWorkers int
	// CompactInterval starts a background compactor that wakes at this
	// period, picks sealed segments whose garbage ratio meets
	// CompactGarbageRatio, and rewrites them without blocking reads or
	// writes. Zero (the default) disables the background goroutine;
	// Compact remains available for explicit full passes.
	CompactInterval time.Duration
	// CompactGarbageRatio is the dead-byte fraction at which a sealed
	// segment becomes a compaction victim. Defaults to 0.5.
	CompactGarbageRatio float64
	// Mmap maps sealed segments read-only — at Open, at rotation and
	// when compaction publishes its outputs — so point reads on sealed
	// data resolve from the page cache with zero syscalls. Mappings
	// retire under the same refcount discipline as descriptors, so
	// reads stay safe across compaction. Platforms without mmap (and
	// the fault-injected files of the crash harness) silently keep the
	// pread path. Defaults to false.
	Mmap bool
	// ReadCacheBytes bounds an in-memory hot-key value cache (sharded
	// LRU) that serves repeat point reads — including reads of the
	// still-unmapped active segment — without touching the log. Writers
	// invalidate entries as part of the commit, so the cache is always
	// coherent. 0 (the default) disables it; nonzero values are raised
	// to a 64 KiB floor so every shard can admit at least typical
	// entries (a sub-floor budget would probe and miss forever).
	ReadCacheBytes int64
	// WriteProbeInterval starts a background probe that, while the
	// write path is degraded by a runtime I/O fault (see health.go),
	// periodically attempts TryRecoverWrites so mutations resume
	// automatically once the fault clears. Zero (the default) disables
	// the goroutine; TryRecoverWrites remains available for explicit
	// recovery (and gives tests deterministic control).
	WriteProbeInterval time.Duration
	// ScrubInterval starts a background scrubber that CRC-walks one
	// sealed segment per tick, quarantining and salvaging corrupt ones
	// (see scrub.go). Zero (the default) disables the goroutine; Scrub
	// remains available for explicit full passes.
	ScrubInterval time.Duration
	// FaultInjection, when set, routes every write-path and
	// compaction/manifest filesystem operation through an error
	// injector (see errfs.go). Testing only: it simulates EIO, ENOSPC,
	// EDQUOT and torn writes while the process keeps running.
	FaultInjection *ErrInjector
	// ReadOnly opens the store for reads only: every mutating entry
	// point (Put, Delete, Sync, WriteBatch, Compact, Scrub) fails with
	// ErrReadOnly, no background goroutines start, and an empty
	// directory opens with no active segment rather than creating one.
	// Tail repair on the newest segment still runs — a replica
	// follower's mirror can carry a torn tail from an interrupted
	// fetch, and trimming it is exactly the recovery the replay
	// contract promises. This is the mode replica followers serve from.
	ReadOnly bool
}

// readCacheMinBytes is the floor a nonzero ReadCacheBytes is raised
// to: 4 KiB per cache shard, enough to admit multi-KiB values.
const readCacheMinBytes = readCacheShards * (4 << 10)

func (o *Options) applyDefaults() {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 8 << 20
	}
	if o.CompactionFloorBytes <= 0 {
		o.CompactionFloorBytes = 1 << 20
	}
	if o.Shards <= 0 {
		o.Shards = 64
	}
	o.Shards = nextPow2(o.Shards)
	if o.ReplayWorkers <= 0 {
		o.ReplayWorkers = runtime.GOMAXPROCS(0)
	}
	if o.CompactGarbageRatio <= 0 || o.CompactGarbageRatio > 1 {
		o.CompactGarbageRatio = 0.5
	}
	if o.ReadCacheBytes > 0 && o.ReadCacheBytes < readCacheMinBytes {
		o.ReadCacheBytes = readCacheMinBytes
	}
}

// nextPow2 rounds n up to the nearest power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// keyLoc locates the live value of a key.
type keyLoc struct {
	segID  uint64
	offset int64
	length int64 // framed length on disk
	valLen int   // decoded value length (cheap Len/stat answers)
}

// shard is one partition of the key directory. Keys are assigned by
// hash, so a shard's mutex only ever serializes operations on its own
// key subset.
type shard struct {
	mu sync.RWMutex
	m  map[string]keyLoc
}

// has reports key presence under the shard read lock.
func (sh *shard) has(key string) bool {
	sh.mu.RLock()
	_, ok := sh.m[key]
	sh.mu.RUnlock()
	return ok
}

// Store is the log-structured key-value store. All methods are safe for
// concurrent use. The key directory is partitioned into power-of-two
// shards, each with its own RWMutex, so readers and writers on
// different keys proceed in parallel; appends to the shared log are
// batched by a group-commit protocol (see commit.go).
type Store struct {
	dir  string
	opts Options
	// fs is the filesystem seam for compaction outputs and manifest
	// writes; tests swap it for a fault-injecting version.
	fs fsOps

	shards []shard
	mask   uint32

	// cache is the optional hot-key value cache (nil when
	// Options.ReadCacheBytes is 0); mmapReads/preadReads count how
	// point reads were served, for ReadStats.
	cache      *readCache
	mmapReads  atomic.Uint64
	preadReads atomic.Uint64

	closed atomic.Bool
	// nextSegID is the last segment ID handed out; rotation and
	// compaction both allocate from it so IDs are never reused even
	// when compaction outputs outlive the active segment they were
	// created under.
	nextSegID atomic.Uint64

	// segMu guards the segments map and the active pointer (the active
	// segment's size is still mutated only under the commit token).
	segMu    sync.RWMutex
	segments map[uint64]*segment
	active   *segment

	// Compaction state: compactMu serializes compaction passes (the
	// background goroutine, explicit Compact calls, scrub salvage and
	// write recovery) and guards the in-memory manifest.
	compactMu sync.Mutex
	man       manifest
	compactor compactorState
	cstats    compactionCounters

	// Fault-tolerance state: the write-path health machine (health.go)
	// and the background segment scrubber (scrub.go).
	whealth writeHealth
	scrub   scrubState

	// Group-commit state: commitTok is a one-slot token channel whose
	// holder is the only goroutine appending to the log; pending is the
	// batch the next leader will commit.
	commitTok chan struct{}
	pendMu    sync.Mutex
	pending   *commitGroup
	commitBuf []byte // leader-owned concatenation buffer
	// grouping records whether the last commit observed concurrent
	// writers; leaders then yield once before detaching the batch so
	// co-writers can join. Leader-only state (guarded by the token).
	grouping bool
}

// shardFor hashes key onto its directory partition.
func (s *Store) shardFor(key string) *shard {
	return &s.shards[s.shardIndex(key)]
}

// shardIndex returns the shard slot for key (FNV-1a over the bytes).
func (s *Store) shardIndex(key string) int {
	return int(fnv32a(key) & s.mask)
}

// rlockAll takes every shard read lock in index order, giving callers a
// consistent global view of the key directory (writers hold one shard
// at a time; compaction takes the same locks in the same order).
func (s *Store) rlockAll() {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for i := range s.shards {
		s.shards[i].mu.RUnlock()
	}
}

// Open opens (creating if necessary) a store rooted at dir, replaying
// all segments to rebuild the key directory. Sealed segments are
// scanned in parallel (see replay.go); recovered state is identical to
// a serial, record-by-record replay because per-key winners merge in
// (rank, segID, offset) order. A torn tail on the newest segment is
// truncated away; corruption anywhere else fails Open. A crash during
// an incremental compaction recovers to a consistent pre- or
// post-compaction segment set (see manifest.go): orphaned outputs are
// deleted, committed ones rolled forward, superseded victims unlinked.
// When opts.CompactInterval is set, a background compactor starts.
func Open(dir string, opts Options) (*Store, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating dir: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		fs:        osFS(),
		shards:    make([]shard, opts.Shards),
		mask:      uint32(opts.Shards - 1),
		segments:  make(map[uint64]*segment),
		commitTok: make(chan struct{}, 1),
	}
	if opts.FaultInjection != nil {
		// The injector wraps the compaction/manifest seam here and the
		// active-segment operations inside rotate/syncActive, covering
		// the whole write/rotate/compact/manifest sequence.
		s.fs = opts.FaultInjection.wrapFS(s.fs)
	}
	for i := range s.shards {
		s.shards[i].m = make(map[string]keyLoc)
	}
	if opts.ReadCacheBytes > 0 {
		s.cache = newReadCache(opts.ReadCacheBytes)
	}
	ids, err := s.recoverDir()
	if err != nil {
		return nil, err
	}
	if err := s.loadSegments(ids); err != nil {
		return nil, err
	}
	if s.active == nil && !opts.ReadOnly {
		if err := s.rotate(); err != nil {
			return nil, err
		}
	}
	if opts.ReadOnly {
		// Nothing mutates a read-only store, so the write probe,
		// compactor and scrubber have no work; starting them would only
		// let a background pass race the external process (the replica
		// fetcher) that owns this directory's contents.
		return s, nil
	}
	// A recovered active segment is deliberately NOT re-preallocated:
	// its file size stays its logical size, so offline scans of the
	// directory (tools, test helpers) keep working by id order while
	// the store runs. Preallocation resumes at the first rotation.
	if opts.CompactInterval > 0 {
		s.startCompactor(opts.CompactInterval, opts.CompactGarbageRatio)
	}
	if opts.WriteProbeInterval > 0 {
		s.startWriteProbe(opts.WriteProbeInterval)
	}
	if opts.ScrubInterval > 0 {
		s.startScrubber(opts.ScrubInterval)
	}
	return s, nil
}

// recoverDir loads the manifest and resolves any half-finished
// compaction the previous process crashed out of, returning the
// committed segment IDs to replay. Outputs listed in the manifest but
// still at their staging name are rolled forward (their bytes were
// durable before the manifest committed); unlisted staging files are
// deleted; victims on the Drop list are unlinked.
func (s *Store) recoverDir() ([]uint64, error) {
	man, err := loadManifest(s.dir)
	if err != nil {
		return nil, err
	}
	s.man = man
	ids, tmps, err := scanDir(s.dir)
	if err != nil {
		return nil, err
	}
	have := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range tmps {
		tmp := segmentTmpPath(s.dir, id)
		if _, committed := man.Ranks[id]; committed && !have[id] {
			if err := os.Rename(tmp, segmentPath(s.dir, id)); err != nil {
				return nil, fmt.Errorf("storage: rolling forward compaction output: %w", err)
			}
			have[id] = true
			ids = append(ids, id)
			continue
		}
		if err := os.Remove(tmp); err != nil {
			return nil, fmt.Errorf("storage: removing orphaned compaction output: %w", err)
		}
	}
	// Half-written manifest temp from a crash mid-commit: harmless.
	os.Remove(filepath.Join(s.dir, manifestName+segTmpExt))
	for _, id := range man.Drop {
		if !have[id] {
			continue
		}
		if err := os.Remove(segmentPath(s.dir, id)); err != nil {
			return nil, fmt.Errorf("storage: dropping superseded segment: %w", err)
		}
		delete(have, id)
	}
	ids = ids[:0]
	for id := range have {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Never reuse an ID named anywhere, even for files already gone.
	max := uint64(0)
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	for id := range man.Ranks {
		if id > max {
			max = id
		}
	}
	for _, id := range man.Drop {
		if id > max {
			max = id
		}
	}
	s.nextSegID.Store(max)
	return ids, nil
}

// Put stores value under key, overwriting any previous value.
func (s *Store) Put(key string, value []byte) error {
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	return s.logRecord(key, record{key: []byte(key), value: value})
}

// Delete removes key. Deleting an absent key is a no-op. The
// authoritative presence check happens on the serialized commit path,
// so racing deletes of the same key log exactly one tombstone (the
// tombstone survives restarts during compaction).
func (s *Store) Delete(key string) error {
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	if s.closed.Load() {
		return ErrClosed
	}
	if !s.shardFor(key).has(key) {
		// Fast path: already absent. Racy, but the commit leader
		// re-checks under its serialized view before logging.
		return nil
	}
	return s.logRecord(key, record{key: []byte(key), tombstone: true})
}

// Get returns the value stored under key. Resolution order: the
// hot-key cache (no log access at all), then the segment's read-only
// mapping (no syscall), then pread.
func (s *Store) Get(key string) ([]byte, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if s.cache != nil {
		if val, ok := s.cache.get(key); ok {
			return val, nil
		}
	}
	sh := s.shardFor(key)
	for {
		sh.mu.RLock()
		loc, ok := sh.m[key]
		sh.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		s.segMu.RLock()
		seg := s.segments[loc.segID]
		if seg != nil {
			seg.acquire()
		}
		s.segMu.RUnlock()
		if seg == nil {
			// Compaction retired the segment between the two lookups;
			// the refreshed keydir entry points at the rewritten copy.
			if s.closed.Load() {
				return nil, ErrClosed
			}
			continue
		}
		val, err := s.readValue(seg, loc, key)
		seg.release()
		if err != nil {
			return nil, err
		}
		if s.cache != nil {
			s.cacheFill(sh, key, loc, val)
		}
		return val, nil
	}
}

// readValue fetches and decodes one record while the caller holds a
// pin on seg. On the mmap path the value bytes are copied out before
// the caller releases the pin — once the pin drains, a retiring
// segment's mapping may be unmapped, and a value aliasing it would be
// a use-after-unmap.
func (s *Store) readValue(seg *segment, loc keyLoc, key string) ([]byte, error) {
	if m := seg.mapped(); m != nil && loc.offset+loc.length <= int64(len(m)) {
		v, err := decodeFramedValue(m[loc.offset:loc.offset+loc.length:loc.offset+loc.length], key)
		if err != nil {
			return nil, fmt.Errorf("storage: decoding %q: %w", key, err)
		}
		s.mmapReads.Add(1)
		return append(make([]byte, 0, len(v)), v...), nil
	}
	buf := make([]byte, loc.length)
	if _, err := seg.f.ReadAt(buf, loc.offset); err != nil {
		return nil, fmt.Errorf("storage: reading %q: %w", key, err)
	}
	val, err := decodeFramedValue(buf, key)
	if err != nil {
		return nil, fmt.Errorf("storage: decoding %q: %w", key, err)
	}
	s.preadReads.Add(1)
	return val, nil
}

// cacheFill inserts a freshly read value, but only while the keydir
// still points at the location it was read from. Check and insert
// happen under the shard read lock; writers update the directory and
// invalidate the cache under the same shard's write lock (applyGroup),
// so a racing overwrite either forces this verification to fail or its
// invalidation runs after the insert and removes it. Without the
// lock-coupled check, an insert delayed past a concurrent Put's
// invalidation would pin a stale value for as long as the key stays
// hot.
func (s *Store) cacheFill(sh *shard, key string, loc keyLoc, val []byte) {
	sh.mu.RLock()
	if cur, ok := sh.m[key]; ok && cur.segID == loc.segID && cur.offset == loc.offset {
		s.cache.add(key, val, loc.segID)
	}
	sh.mu.RUnlock()
}

// mapSegment installs a read-only mapping for a sealed segment so
// point reads on it skip the pread syscall. Best effort: when mmap is
// disabled, the platform lacks it, the file is a fault-injected test
// seam, or the segment is empty, readers keep using pread. Callers
// must pass only sealed segments — a mapping never grows, so bytes
// appended after it was taken would be invisible to readers.
func (s *Store) mapSegment(seg *segment) {
	if !s.opts.Mmap || seg == nil || seg.size <= 0 {
		return
	}
	f := osFile(seg.f)
	if f == nil {
		return
	}
	if b, err := mmapFile(f, seg.size); err == nil {
		if !seg.mapping.CompareAndSwap(nil, &mmapRegion{data: b}) {
			// Already mapped: a failed rotate can re-seal the same
			// segment. Keep the first mapping — a concurrent reader
			// may hold its pointer, so replacing it would munmap under
			// that reader — and discard the fresh one. Records past
			// the older mapping's end fall back to pread via the
			// bounds check in readValue.
			munmapFile(b)
		}
	}
}

// Has reports whether key is present.
func (s *Store) Has(key string) bool {
	return s.shardFor(key).has(key)
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.rlockAll()
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].m)
	}
	s.runlockAll()
	return n
}

// Keys returns all live keys, sorted. Intended for tools and tests; the
// result is O(n) fresh memory taken from one consistent view.
func (s *Store) Keys() []string {
	s.rlockAll()
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].m)
	}
	out := make([]string, 0, n)
	for i := range s.shards {
		for k := range s.shards[i].m {
			out = append(out, k)
		}
	}
	s.runlockAll()
	sort.Strings(out)
	return out
}

// KeysWithPrefix returns live keys beginning with prefix, sorted.
func (s *Store) KeysWithPrefix(prefix string) []string {
	s.rlockAll()
	var out []string
	for i := range s.shards {
		for k := range s.shards[i].m {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
				out = append(out, k)
			}
		}
	}
	s.runlockAll()
	sort.Strings(out)
	return out
}

// foldEntry pairs one snapshot key with its location and, later, its
// decoded value.
type foldEntry struct {
	key string
	loc keyLoc
	val []byte
}

// Fold calls fn for every live key/value pair in sorted key order,
// stopping at the first error. It snapshots the key directory once and
// pins the referenced segments, so the fold sees a consistent view
// through concurrent writes, rotation and compaction. Values are read
// in bounded batches (~foldBatchBytes of live data at a time): within
// a batch, records are fetched in (segID, offset) order with runs of
// nearby records coalesced into single chunked reads, so a fold costs
// O(bytes/chunk) syscalls instead of one per key while holding only
// one batch of values in memory.
func (s *Store) Fold(fn func(key string, value []byte) error) error {
	if s.closed.Load() {
		return ErrClosed
	}

	// Snapshot locations and pin segments under one consistent view, so
	// concurrent writes, rotation and compaction cannot disturb the
	// records the fold will read.
	s.rlockAll()
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].m)
	}
	entries := make([]foldEntry, 0, n)
	for i := range s.shards {
		for k, loc := range s.shards[i].m {
			entries = append(entries, foldEntry{key: k, loc: loc})
		}
	}
	s.segMu.RLock()
	pinned := make([]*segment, 0, len(s.segments))
	segByID := make(map[uint64]*segment, len(s.segments))
	for id, seg := range s.segments {
		seg.acquire()
		pinned = append(pinned, seg)
		segByID[id] = seg
	}
	s.segMu.RUnlock()
	s.runlockAll()
	defer func() {
		for _, seg := range pinned {
			seg.release()
		}
	}()

	// Deliver in sorted key order, reading one bounded batch of values
	// ahead. Each batch is fetched in (segID, offset) order with nearby
	// records coalesced into chunked reads, so memory stays
	// O(foldBatchBytes + one value) instead of the whole live set.
	// Decoded values alias their chunk (decodeFramedValue copies
	// nothing); a batch's chunks become collectable once the next batch
	// starts.
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	for start := 0; start < len(entries); {
		end := start
		var batchBytes int64
		for end < len(entries) && (end == start || batchBytes+entries[end].loc.length <= foldBatchBytes) {
			batchBytes += entries[end].loc.length
			end++
		}
		if err := s.readFoldBatch(entries[start:end], segByID); err != nil {
			return err
		}
		for i := start; i < end; i++ {
			if err := fn(entries[i].key, entries[i].val); err != nil {
				return err
			}
			entries[i].val = nil
		}
		start = end
	}
	return nil
}

// readFoldBatch fills val for one batch of snapshot entries, fetching
// records in (segID, offset) order and coalescing runs of nearby
// records into single chunked reads.
func (s *Store) readFoldBatch(batch []foldEntry, segByID map[uint64]*segment) error {
	byOffset := make([]*foldEntry, len(batch))
	for i := range batch {
		byOffset[i] = &batch[i]
	}
	sort.Slice(byOffset, func(i, j int) bool {
		a, b := byOffset[i].loc, byOffset[j].loc
		if a.segID != b.segID {
			return a.segID < b.segID
		}
		return a.offset < b.offset
	})
	for i := 0; i < len(byOffset); {
		first := byOffset[i].loc
		seg := segByID[first.segID]
		if seg == nil {
			// Compaction cannot outrun the snapshot (it needs the shard
			// write locks the fold held), so a vanished segment means
			// the store was closed underneath us.
			if s.closed.Load() {
				return ErrClosed
			}
			return fmt.Errorf("%w: fold snapshot references missing segment %d", ErrCorrupt, first.segID)
		}
		start, end := first.offset, first.offset+first.length
		j := i + 1
		for j < len(byOffset) {
			next := byOffset[j].loc
			if next.segID != first.segID || next.offset+next.length-start > foldChunkBytes {
				break
			}
			end = next.offset + next.length
			j++
		}
		chunk := make([]byte, end-start)
		if _, err := seg.f.ReadAt(chunk, start); err != nil {
			return fmt.Errorf("storage: fold reading segment %d: %w", first.segID, err)
		}
		for ; i < j; i++ {
			e := byOffset[i]
			rel := e.loc.offset - start
			// Full slice expression: cap the value at its record, so a
			// callback appending to it reallocates instead of clobbering
			// the chunk bytes backing later records.
			val, err := decodeFramedValue(chunk[rel:rel+e.loc.length:rel+e.loc.length], e.key)
			if err != nil {
				return fmt.Errorf("storage: decoding %q: %w", e.key, err)
			}
			e.val = val
		}
	}
	return nil
}

// Fold I/O tuning. foldBatchBytes bounds the live value bytes resident
// per delivery batch; foldChunkBytes bounds one coalesced read (gaps
// from dead records inside the span are read and skipped, so it also
// bounds wasted I/O per chunk).
const (
	foldBatchBytes = 8 << 20
	foldChunkBytes = 1 << 20
)

// Sync flushes the active segment to stable storage, ordered after
// every previously completed write (fdatasync on linux — data plus the
// metadata needed to read it back). While the write path is degraded
// Sync fails with ErrWriteWedged rather than fsyncing a file whose
// fsync already failed — after a failed fsync the kernel may have
// marked dirty pages clean, so a retry could claim durability the disk
// never provided. Recovery re-establishes it with a fresh segment.
func (s *Store) Sync() error {
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	s.commitTok <- struct{}{}
	defer func() { <-s.commitTok }()
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.writeGate(); err != nil {
		return err
	}
	if err := s.syncActive(); err != nil {
		s.active.syncFailed.Store(true)
		err = fmt.Errorf("storage: fsync: %w", err)
		s.degradeWrites(err)
		return err
	}
	s.active.syncedSize.Store(s.active.size)
	return nil
}

// Stats reports store-level statistics.
type Stats struct {
	// Keys is the live key count.
	Keys int
	// Segments is the number of data files.
	Segments int
	// Shards is the number of key-directory partitions.
	Shards int
	// LiveBytes is the total framed size of live records.
	LiveBytes int64
	// DeadBytes estimates reclaimable space (superseded records and
	// tombstones).
	DeadBytes int64
}

// Stats returns statistics from one consistent view of the directory.
func (s *Store) Stats() Stats {
	s.rlockAll()
	var live int64
	keys := 0
	for i := range s.shards {
		keys += len(s.shards[i].m)
		for _, loc := range s.shards[i].m {
			live += loc.length
		}
	}
	s.segMu.RLock()
	nseg := len(s.segments)
	var dead int64
	for _, seg := range s.segments {
		dead += seg.dead.Load()
	}
	s.segMu.RUnlock()
	s.runlockAll()
	return Stats{
		Keys:      keys,
		Segments:  nseg,
		Shards:    len(s.shards),
		LiveBytes: live,
		DeadBytes: dead,
	}
}

// ReadStats reports how point reads are being served and how the
// hot-key cache is doing. Zero-valued cache fields mean the cache is
// disabled.
type ReadStats struct {
	// MmapSegments is the number of sealed segments currently
	// memory-mapped.
	MmapSegments int
	// MmapReads counts point reads resolved from a mapping (zero
	// syscalls); PreadReads counts those that fell back to pread.
	MmapReads  uint64
	PreadReads uint64
	// CacheHits/CacheMisses count hot-key cache lookups; CacheEntries,
	// CacheBytes and CacheCapacity describe current residency.
	CacheHits     uint64
	CacheMisses   uint64
	CacheEntries  int
	CacheBytes    int64
	CacheCapacity int64
}

// ReadStats returns a snapshot of read-path statistics.
func (s *Store) ReadStats() ReadStats {
	rs := ReadStats{
		MmapReads:  s.mmapReads.Load(),
		PreadReads: s.preadReads.Load(),
	}
	s.segMu.RLock()
	for _, seg := range s.segments {
		if seg.mapped() != nil {
			rs.MmapSegments++
		}
	}
	s.segMu.RUnlock()
	if s.cache != nil {
		rs.CacheHits = s.cache.hits.Load()
		rs.CacheMisses = s.cache.misses.Load()
		rs.CacheEntries, rs.CacheBytes, rs.CacheCapacity = s.cache.stats()
	}
	return rs
}

// deadBytesTotal sums per-segment garbage counters (test helper and
// compaction-floor check).
func (s *Store) deadBytesTotal() int64 {
	s.segMu.RLock()
	var dead int64
	for _, seg := range s.segments {
		dead += seg.dead.Load()
	}
	s.segMu.RUnlock()
	return dead
}

// Close stops the background compactor, syncs and closes every
// segment. The store is unusable afterward; in-flight writes that
// could not be committed fail with ErrClosed. Segments still pinned by
// in-flight reads close once those reads release them.
func (s *Store) Close() error {
	s.stopCompactor()
	s.stopWriteProbe()
	s.stopScrubber()
	s.commitTok <- struct{}{}
	defer func() { <-s.commitTok }()
	if s.closed.Load() {
		return nil
	}
	s.closed.Store(true)

	// Fail the batch writers queued behind us; submit rejects newcomers
	// once the closed flag is up.
	s.pendMu.Lock()
	g := s.pending
	s.pending = nil
	s.pendMu.Unlock()
	if g != nil {
		g.err = ErrClosed
		for _, req := range g.reqs {
			req.err = ErrClosed
		}
		close(g.done)
	}

	var firstErr error
	if s.active != nil && !s.opts.ReadOnly {
		// Trim the preallocated tail so the file's size is its logical
		// size again — the next Open then replays it without tail
		// repair, and sealed-segment invariants (file size == data
		// size) hold for mappings too.
		if f := osFile(s.active.f); f != nil {
			if err := f.Truncate(s.active.size); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if s.active.syncFailed.Load() {
			// Never re-fsync a file whose fsync failed (see health.go);
			// surface the degradation instead of silently succeeding.
			if firstErr == nil {
				firstErr = s.wedgedErr()
			}
		} else if err := s.active.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.segMu.Lock()
	for _, seg := range s.segments {
		if err := seg.retire(false); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.segments = map[uint64]*segment{}
	s.segMu.Unlock()
	return firstErr
}
