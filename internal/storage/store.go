package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Store errors.
var (
	// ErrNotFound is returned by Get for absent keys.
	ErrNotFound = errors.New("storage: key not found")
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("storage: store is closed")
)

// Options configures a Store. The zero value is usable; fields default
// as documented.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it exceeds this
	// size. Defaults to 8 MiB.
	MaxSegmentBytes int64
	// SyncEveryPut fsyncs after each Put/Delete. Durable but slow;
	// defaults to false (sync on Close/Sync only).
	SyncEveryPut bool
	// CompactionFloorBytes is the minimum dead-byte volume before
	// NeedsCompaction reports true. Defaults to 1 MiB.
	CompactionFloorBytes int64
}

func (o *Options) applyDefaults() {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 8 << 20
	}
	if o.CompactionFloorBytes <= 0 {
		o.CompactionFloorBytes = 1 << 20
	}
}

// keyLoc locates the live value of a key.
type keyLoc struct {
	segID  uint64
	offset int64
	length int64 // framed length on disk
	valLen int   // decoded value length (cheap Len/stat answers)
}

// Store is the log-structured key-value store. All methods are safe for
// concurrent use; writes serialize on an internal mutex while reads only
// take it briefly to resolve locations.
type Store struct {
	mu     sync.RWMutex
	dir    string
	opts   Options
	keydir map[string]keyLoc
	// segments maps sealed and active segment IDs to open handles.
	segments map[uint64]*segment
	active   *segment
	closed   bool
	// deadBytes estimates space held by superseded records, the
	// compaction trigger statistic.
	deadBytes int64
	writeBuf  []byte
}

// Open opens (creating if necessary) a store rooted at dir, replaying
// all segments to rebuild the key directory. A torn tail on the newest
// segment is truncated away; corruption anywhere else fails Open.
func Open(dir string, opts Options) (*Store, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating dir: %w", err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		keydir:   make(map[string]keyLoc),
		segments: make(map[uint64]*segment),
	}
	ids, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		last := i == len(ids)-1
		path := segmentPath(dir, id)
		size, err := scanSegment(path, last, func(rec record, off, length int64) error {
			s.replay(rec, id, off, length)
			return nil
		})
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return nil, fmt.Errorf("storage: opening segment: %w", err)
		}
		seg := &segment{id: id, path: path, f: f, size: size}
		s.segments[id] = seg
		if last {
			s.active = seg
		}
	}
	if s.active == nil {
		if err := s.rotateLocked(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// replay applies one recovered record to the key directory.
func (s *Store) replay(rec record, segID uint64, off, length int64) {
	key := string(rec.key)
	if prev, ok := s.keydir[key]; ok {
		s.deadBytes += prev.length
	}
	if rec.tombstone {
		delete(s.keydir, key)
		s.deadBytes += length // the tombstone itself is reclaimable
		return
	}
	s.keydir[key] = keyLoc{segID: segID, offset: off, length: length, valLen: len(rec.value)}
}

// rotateLocked seals the active segment and starts a fresh one. Caller
// holds mu.
func (s *Store) rotateLocked() error {
	var next uint64 = 1
	if s.active != nil {
		next = s.active.id + 1
		if err := s.active.f.Sync(); err != nil {
			return fmt.Errorf("storage: syncing sealed segment: %w", err)
		}
	}
	path := segmentPath(s.dir, next)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating segment: %w", err)
	}
	seg := &segment{id: next, path: path, f: f}
	s.segments[next] = seg
	s.active = seg
	return nil
}

// Put stores value under key, overwriting any previous value.
func (s *Store) Put(key string, value []byte) error {
	return s.append(record{key: []byte(key), value: value})
}

// Delete removes key. Deleting an absent key is a no-op (a tombstone is
// still logged so the deletion survives restarts during compaction).
func (s *Store) Delete(key string) error {
	s.mu.RLock()
	_, present := s.keydir[key]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !present {
		return nil
	}
	return s.append(record{key: []byte(key), tombstone: true})
}

// append frames and writes one record, updating the key directory.
func (s *Store) append(rec record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	buf, err := appendRecord(s.writeBuf[:0], rec)
	if err != nil {
		return err
	}
	s.writeBuf = buf[:0]
	off := s.active.size
	if _, err := s.active.f.WriteAt(buf, off); err != nil {
		return fmt.Errorf("storage: appending record: %w", err)
	}
	s.active.size += int64(len(buf))
	if s.opts.SyncEveryPut {
		if err := s.active.f.Sync(); err != nil {
			return fmt.Errorf("storage: fsync: %w", err)
		}
	}
	s.replay(rec, s.active.id, off, int64(len(buf)))
	if s.active.size >= s.opts.MaxSegmentBytes {
		return s.rotateLocked()
	}
	return nil
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	loc, ok := s.keydir[key]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	seg := s.segments[loc.segID]
	s.mu.RUnlock()

	buf := make([]byte, loc.length)
	if _, err := seg.f.ReadAt(buf, loc.offset); err != nil {
		return nil, fmt.Errorf("storage: reading %q: %w", key, err)
	}
	rr := newRecordReader(bytes.NewReader(buf))
	rec, err := rr.next()
	if err != nil {
		return nil, fmt.Errorf("storage: decoding %q: %w", key, err)
	}
	if string(rec.key) != key {
		return nil, fmt.Errorf("%w: keydir points at record for %q, want %q", ErrCorrupt, rec.key, key)
	}
	return rec.value, nil
}

// Has reports whether key is present.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.keydir[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.keydir)
}

// Keys returns all live keys, sorted. Intended for tools and tests; the
// result is O(n) fresh memory.
func (s *Store) Keys() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.keydir))
	for k := range s.keydir {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// KeysWithPrefix returns live keys beginning with prefix, sorted.
func (s *Store) KeysWithPrefix(prefix string) []string {
	s.mu.RLock()
	var out []string
	for k := range s.keydir {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Fold calls fn for every live key/value pair in sorted key order,
// stopping at the first error.
func (s *Store) Fold(fn func(key string, value []byte) error) error {
	for _, k := range s.Keys() {
		v, err := s.Get(k)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // deleted between Keys and Get
			}
			return err
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.active.f.Sync()
}

// Stats reports store-level statistics.
type Stats struct {
	// Keys is the live key count.
	Keys int
	// Segments is the number of data files.
	Segments int
	// LiveBytes is the total framed size of live records.
	LiveBytes int64
	// DeadBytes estimates reclaimable space (superseded records and
	// tombstones).
	DeadBytes int64
}

// Stats returns current statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var live int64
	for _, loc := range s.keydir {
		live += loc.length
	}
	return Stats{
		Keys:      len(s.keydir),
		Segments:  len(s.segments),
		LiveBytes: live,
		DeadBytes: s.deadBytes,
	}
}

// Close syncs and closes every segment. The store is unusable afterward.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	if s.active != nil {
		if err := s.active.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, seg := range s.segments {
		if err := seg.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
