package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
)

// serialReplayState is the reference recovery: the pre-sharding
// engine's record-by-record, segment-by-segment replay.
type serialReplayState struct {
	keydir map[string]keyLoc
	dead   int64
}

// serialReplay rebuilds keydir state exactly the way the original
// single-threaded Open did. It repairs a torn tail on the newest
// segment as a side effect, just like Open.
func serialReplay(t *testing.T, dir string) serialReplayState {
	t.Helper()
	ids, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := serialReplayState{keydir: make(map[string]keyLoc)}
	for i, id := range ids {
		last := i == len(ids)-1
		_, err := scanSegment(segmentPath(dir, id), last, func(rec record, off, length int64) error {
			key := string(rec.key)
			if prev, ok := st.keydir[key]; ok {
				st.dead += prev.length
			}
			if rec.tombstone {
				delete(st.keydir, key)
				st.dead += length
				return nil
			}
			st.keydir[key] = keyLoc{segID: id, offset: off, length: length, valLen: len(rec.value)}
			return nil
		})
		if err != nil {
			t.Fatalf("serial replay of segment %d: %v", id, err)
		}
	}
	return st
}

// gatherKeydir flattens a store's shard maps into one map for
// comparison against the serial reference.
func gatherKeydir(s *Store) map[string]keyLoc {
	out := make(map[string]keyLoc)
	for i := range s.shards {
		for k, loc := range s.shards[i].m {
			out[k] = loc
		}
	}
	return out
}

// buildRecoveryFixture writes a multi-segment store with overwrites and
// tombstones, then closes it.
func buildRecoveryFixture(t *testing.T, dir string) {
	t.Helper()
	s, err := Open(dir, Options{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	val := func(gen, i int) []byte {
		return bytes.Repeat([]byte{byte('a' + gen)}, 20+i%30)
	}
	for gen := 0; gen < 4; gen++ {
		for i := 0; i < 40; i++ {
			if err := s.Put(fmt.Sprintf("key%03d", i), val(gen, i)); err != nil {
				t.Fatal(err)
			}
		}
		// Delete a sliding window; some keys get resurrected by the
		// next generation, some stay dead.
		for i := gen * 7; i < gen*7+5; i++ {
			if err := s.Delete(fmt.Sprintf("key%03d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := s.Stats(); st.Segments < 4 {
		t.Fatalf("fixture built only %d segments, want >= 4", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelReplayMatchesSerial asserts that the concurrent Open
// rebuilds keydir state byte-identical to the reference serial replay
// on a multi-segment fixture with overwrites and tombstones.
func TestParallelReplayMatchesSerial(t *testing.T) {
	for _, tear := range []bool{false, true} {
		name := "clean"
		if tear {
			name = "tornTail"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			buildRecoveryFixture(t, dir)
			if tear {
				ids, err := listSegments(dir)
				if err != nil {
					t.Fatal(err)
				}
				path := segmentPath(dir, ids[len(ids)-1])
				fi, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(path, fi.Size()-5); err != nil {
					t.Fatal(err)
				}
			}

			want := serialReplay(t, dir) // also repairs the torn tail

			for _, workers := range []int{1, 2, 8} {
				s, err := Open(dir, Options{ReplayWorkers: workers})
				if err != nil {
					t.Fatalf("Open(workers=%d): %v", workers, err)
				}
				got := gatherKeydir(s)
				if len(got) != len(want.keydir) {
					t.Errorf("workers=%d: %d keys, want %d", workers, len(got), len(want.keydir))
				}
				for k, wloc := range want.keydir {
					if gloc, ok := got[k]; !ok || gloc != wloc {
						t.Errorf("workers=%d: keydir[%q] = %+v (present=%v), want %+v", workers, k, gloc, ok, wloc)
					}
				}
				for k := range got {
					if _, ok := want.keydir[k]; !ok {
						t.Errorf("workers=%d: extra key %q", workers, k)
					}
				}
				if dead := s.deadBytesTotal(); dead != want.dead {
					t.Errorf("workers=%d: deadBytes = %d, want %d", workers, dead, want.dead)
				}
				s.Close()
			}
		})
	}
}

// TestReplayAcrossShardCounts verifies recovered contents are
// independent of the shard count the store is reopened with.
func TestReplayAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()
	buildRecoveryFixture(t, dir)
	want := serialReplay(t, dir)
	for _, shards := range []int{1, 4, 64, 100} { // 100 rounds up to 128
		s, err := Open(dir, Options{Shards: shards})
		if err != nil {
			t.Fatalf("Open(shards=%d): %v", shards, err)
		}
		if got := gatherKeydir(s); len(got) != len(want.keydir) {
			t.Errorf("shards=%d: %d keys, want %d", shards, len(got), len(want.keydir))
		}
		if s.Len() != len(want.keydir) {
			t.Errorf("shards=%d: Len = %d, want %d", shards, s.Len(), len(want.keydir))
		}
		for k, loc := range want.keydir {
			v, err := s.Get(k)
			if err != nil {
				t.Fatalf("shards=%d: Get(%q): %v", shards, k, err)
			}
			if len(v) != loc.valLen {
				t.Errorf("shards=%d: Get(%q) len = %d, want %d", shards, k, len(v), loc.valLen)
			}
		}
		s.Close()
	}
}

// TestDeleteSkipsRedundantTombstone is the regression test for the
// delete TOCTOU: a second delete of an already-absent key must not log
// a second tombstone.
func TestDeleteSkipsRedundantTombstone(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	afterFirst := s.Stats()
	sizeAfterFirst := s.active.size
	for i := 0; i < 5; i++ {
		if err := s.Delete("k"); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.DeadBytes != afterFirst.DeadBytes {
		t.Errorf("redundant deletes grew DeadBytes: %d -> %d", afterFirst.DeadBytes, st.DeadBytes)
	}
	if s.active.size != sizeAfterFirst {
		t.Errorf("redundant deletes appended bytes: %d -> %d", sizeAfterFirst, s.active.size)
	}
	s.Close()

	// The log must contain exactly one tombstone for k.
	tombstones := countTombstones(t, dir, "k")
	if tombstones != 1 {
		t.Errorf("log has %d tombstones for k, want 1", tombstones)
	}
}

// countTombstones scans every segment counting tombstone records for
// key.
func countTombstones(t *testing.T, dir, key string) int {
	t.Helper()
	ids, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i, id := range ids {
		_, err := scanSegment(segmentPath(dir, id), i == len(ids)-1, func(rec record, _, _ int64) error {
			if rec.tombstone && string(rec.key) == key {
				n++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// TestReopenAfterPoison crashes the process while the write path is
// degraded by a runtime I/O fault — no recovery, no clean Close — and
// asserts the reopened store reconciles file bytes against the
// acknowledgment contract: every acknowledged write is present and
// correct, and the failed write is either fully absent or fully
// replayed, never half-visible or corrupting the replay.
func TestReopenAfterPoison(t *testing.T) {
	cases := []struct {
		name string
		sync bool // SyncEveryPut
		tear bool // the failing write persists half its bytes
	}{
		{"unsyncedTail", false, false},
		{"unsyncedTailTorn", false, true},
		{"syncEveryPut", true, false},
		{"syncEveryPutTorn", true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := NewErrInjector()
			s, err := Open(dir, Options{
				MaxSegmentBytes: 1 << 10,
				SyncEveryPut:    tc.sync,
				FaultInjection:  inj,
			})
			if err != nil {
				t.Fatal(err)
			}
			acked := make(map[string]string)
			for i := 0; i < 25; i++ {
				k := fmt.Sprintf("acked-%02d", i)
				v := fmt.Sprintf("value-%02d-%s", i, string(bytes.Repeat([]byte{'p'}, 100)))
				if err := s.Put(k, []byte(v)); err != nil {
					t.Fatalf("Put: %v", err)
				}
				acked[k] = v
			}
			if err := s.Delete("acked-00"); err != nil {
				t.Fatal(err)
			}
			delete(acked, "acked-00")

			inj.Arm(errInjectedIO, FaultWrite)
			if tc.tear {
				inj.Clear()
				// One-shot torn write: half the frame's bytes land.
				inj.FailOp(0, errInjectedIO, true)
			}
			failedVal := "failed-" + string(bytes.Repeat([]byte{'q'}, 100))
			if err := s.Put("poisoned", []byte(failedVal)); err == nil {
				t.Fatal("Put through failing write succeeded")
			}
			if got := s.Health(); got == HealthHealthy {
				t.Fatalf("Health = %v after failed write, want degraded", got)
			}
			// Acked state still serves while degraded.
			for k, v := range acked {
				if got, err := s.Get(k); err != nil || string(got) != v {
					t.Fatalf("degraded Get(%q) = (%q, %v), want %q", k, got, err, v)
				}
			}

			// Process dies here: no TryRecoverWrites, no Close.
			crashClose(s)

			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after poisoned crash: %v", err)
			}
			defer s2.Close()
			for k, v := range acked {
				if got, err := s2.Get(k); err != nil || string(got) != v {
					t.Fatalf("reopened Get(%q) = (%q, %v), want acked %q", k, got, err, v)
				}
			}
			if _, err := s2.Get("acked-00"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("reopened Get(acked-00) err = %v, want ErrNotFound (acked delete lost)", err)
			}
			// The failed write: all or nothing.
			switch got, err := s2.Get("poisoned"); {
			case err == nil && string(got) == failedVal:
				// Unacked bytes replayed consistently — allowed.
			case errors.Is(err, ErrNotFound):
				// Trimmed — allowed.
			default:
				t.Fatalf("reopened Get(poisoned) = (%q, %v): failed write is half-visible", got, err)
			}
			// The replay reconciled cleanly: writes work on the reopened
			// store and a full fold sees no decode errors.
			if err := s2.Put("after-crash", []byte("ok")); err != nil {
				t.Fatalf("Put on reopened store: %v", err)
			}
			if err := s2.Fold(func(string, []byte) error { return nil }); err != nil {
				t.Fatalf("Fold over reopened store: %v", err)
			}
		})
	}
}

// TestReopenAfterRecoveredPoison: degrade, recover in-process (which
// salvages the acked unsynced tail onto a fresh segment), then crash
// WITHOUT a clean Close. The salvaged records were fsynced by recovery,
// so they must survive the crash.
func TestReopenAfterRecoveredPoison(t *testing.T) {
	dir := t.TempDir()
	inj := NewErrInjector()
	s, err := Open(dir, Options{FaultInjection: inj}) // SyncEveryPut off
	if err != nil {
		t.Fatal(err)
	}
	acked := make(map[string]string)
	for i := 0; i < 12; i++ {
		k := fmt.Sprintf("tail-%02d", i)
		v := fmt.Sprintf("unsynced-%02d", i)
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		acked[k] = v
	}
	inj.Arm(errInjectedIO, FaultWrite)
	if err := s.Put("boom", []byte("x")); err == nil {
		t.Fatal("Put through failing write succeeded")
	}
	inj.Clear()
	if err := s.TryRecoverWrites(); err != nil {
		t.Fatalf("TryRecoverWrites: %v", err)
	}
	crashClose(s)

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	for k, v := range acked {
		if got, err := s2.Get(k); err != nil || string(got) != v {
			t.Fatalf("reopened Get(%q) = (%q, %v), want salvaged %q", k, got, err, v)
		}
	}
}
