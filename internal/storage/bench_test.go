package storage

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

// singleMutexStore reimplements the pre-sharding engine — one RWMutex
// over one keydir, one WriteAt and one optional fsync per call — as the
// benchmark baseline the sharded group-commit engine is measured
// against. It shares the record framing and segment naming of the real
// engine so the on-disk byte stream is identical.
type singleMutexStore struct {
	mu       sync.RWMutex
	f        *os.File
	size     int64
	keydir   map[string]keyLoc
	syncEach bool
	writeBuf []byte
}

func openSingleMutex(b *testing.B, dir string, syncEach bool) *singleMutexStore {
	b.Helper()
	f, err := os.OpenFile(segmentPath(dir, 1), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	return &singleMutexStore{f: f, keydir: make(map[string]keyLoc), syncEach: syncEach}
}

func (s *singleMutexStore) put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, err := appendRecord(s.writeBuf[:0], record{key: []byte(key), value: value})
	if err != nil {
		return err
	}
	s.writeBuf = buf[:0]
	off := s.size
	if _, err := s.f.WriteAt(buf, off); err != nil {
		return err
	}
	s.size += int64(len(buf))
	if s.syncEach {
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	s.keydir[key] = keyLoc{segID: 1, offset: off, length: int64(len(buf)), valLen: len(value)}
	return nil
}

func (s *singleMutexStore) get(key string) ([]byte, error) {
	s.mu.RLock()
	loc, ok := s.keydir[key]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	buf := make([]byte, loc.length)
	if _, err := s.f.ReadAt(buf, loc.offset); err != nil {
		return nil, err
	}
	rec, err := newRecordReader(bytes.NewReader(buf)).next()
	if err != nil {
		return nil, err
	}
	return rec.value, nil
}

func (s *singleMutexStore) close() { s.f.Close() }

// benchParallelism is the goroutine count the ISSUE targets: the
// engine must beat the single-mutex baseline by >=4x on writes and
// >=8x on the mixed workload at 8 concurrent clients.
const benchParallelism = 8

// BenchmarkStoreConcurrentWrite measures write throughput at 8
// goroutines: the sharded group-commit engine against the single-mutex
// per-call baseline, with and without the per-put durability contract.
func BenchmarkStoreConcurrentWrite(b *testing.B) {
	val := bytes.Repeat([]byte("v"), 128)
	for _, durable := range []bool{false, true} {
		mode := "syncOff"
		if durable {
			mode = "syncEveryPut"
		}
		b.Run("SingleMutex/"+mode, func(b *testing.B) {
			s := openSingleMutex(b, b.TempDir(), durable)
			defer s.close()
			var seq int64
			var seqMu sync.Mutex
			b.SetParallelism(benchParallelism)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					seqMu.Lock()
					n := seq
					seq++
					seqMu.Unlock()
					if err := s.put(fmt.Sprintf("key%09d", n), val); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
		b.Run("Sharded/"+mode, func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{SyncEveryPut: durable})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			var seq int64
			var seqMu sync.Mutex
			b.SetParallelism(benchParallelism)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					seqMu.Lock()
					n := seq
					seq++
					seqMu.Unlock()
					if err := s.Put(fmt.Sprintf("key%09d", n), val); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStoreMixedReadWrite is the headline mixed workload: 8
// reader goroutines measure point-read throughput while a background
// writer streams durable puts to other keys. In the baseline every
// fsync happens inside the global mutex, so all readers stall ~100us
// per write cycle; the sharded engine keeps readers entirely off the
// commit path, so this ratio is the direct measure of the
// "different keys never contend" property.
func BenchmarkStoreMixedReadWrite(b *testing.B) {
	const keyspace = 4096
	val := bytes.Repeat([]byte("v"), 128)
	key := func(i int) string { return fmt.Sprintf("key%09d", i%keyspace) }

	b.Run("SingleMutex", func(b *testing.B) {
		s := openSingleMutex(b, b.TempDir(), true)
		defer s.close()
		for i := 0; i < keyspace; i++ {
			if err := s.put(key(i), val); err != nil {
				b.Fatal(err)
			}
		}
		stop := make(chan struct{})
		writerDone := make(chan struct{})
		go func() {
			defer close(writerDone)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.put(fmt.Sprintf("hot%06d", i%64), val); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		b.SetParallelism(benchParallelism)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				if _, err := s.get(key(i * 31)); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		close(stop)
		<-writerDone
	})
	b.Run("Sharded", func(b *testing.B) {
		s, err := Open(b.TempDir(), Options{SyncEveryPut: true})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		for i := 0; i < keyspace; i++ {
			if err := s.Put(key(i), val); err != nil {
				b.Fatal(err)
			}
		}
		stop := make(chan struct{})
		writerDone := make(chan struct{})
		go func() {
			defer close(writerDone)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Put(fmt.Sprintf("hot%06d", i%64), val); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		b.SetParallelism(benchParallelism)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				if _, err := s.Get(key(i * 31)); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		close(stop)
		<-writerDone
	})
}

// BenchmarkStoreBlendedOps is the secondary mixed shape: every
// goroutine interleaves 15 durable-store reads with one write, so the
// metric blends read and amortized-fsync cost (bounded on a single
// CPU by the fsync floor; see README.md).
func BenchmarkStoreBlendedOps(b *testing.B) {
	const keyspace = 4096
	val := bytes.Repeat([]byte("v"), 128)
	key := func(i int) string { return fmt.Sprintf("key%09d", i%keyspace) }

	b.Run("SingleMutex", func(b *testing.B) {
		s := openSingleMutex(b, b.TempDir(), true)
		defer s.close()
		for i := 0; i < keyspace; i++ {
			if err := s.put(key(i), val); err != nil {
				b.Fatal(err)
			}
		}
		b.SetParallelism(benchParallelism)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				if i%16 == 0 {
					if err := s.put(key(i), val); err != nil {
						b.Error(err)
						return
					}
					continue
				}
				if _, err := s.get(key(i * 31)); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("Sharded", func(b *testing.B) {
		s, err := Open(b.TempDir(), Options{SyncEveryPut: true})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		for i := 0; i < keyspace; i++ {
			if err := s.Put(key(i), val); err != nil {
				b.Fatal(err)
			}
		}
		b.SetParallelism(benchParallelism)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				if i%16 == 0 {
					if err := s.Put(key(i), val); err != nil {
						b.Error(err)
						return
					}
					continue
				}
				if _, err := s.Get(key(i * 31)); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkStoreOpenReplay measures recovering a multi-segment store,
// sweeping the replay worker pool (workers=1 is the serial baseline).
func BenchmarkStoreOpenReplay(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 1 << 18})
	if err != nil {
		b.Fatal(err)
	}
	val := bytes.Repeat([]byte("v"), 256)
	for i := 0; i < 20000; i++ {
		if err := s.Put(fmt.Sprintf("key%09d", i%8000), val); err != nil {
			b.Fatal(err)
		}
	}
	nseg := s.Stats().Segments
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("segments%d/workers%d", nseg, workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := Open(dir, Options{ReplayWorkers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if s.Len() != 8000 {
					b.Fatal("bad replay")
				}
				s.Close()
			}
		})
	}
}

// BenchmarkStoreFold measures the sequential-I/O fold against the
// per-key Get loop it replaced.
func BenchmarkStoreFold(b *testing.B) {
	s, err := Open(b.TempDir(), Options{MaxSegmentBytes: 1 << 18})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("v"), 256)
	for i := 0; i < 5000; i++ {
		if err := s.Put(fmt.Sprintf("key%09d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("SnapshotFold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			if err := s.Fold(func(string, []byte) error { n++; return nil }); err != nil {
				b.Fatal(err)
			}
			if n != 5000 {
				b.Fatal("short fold")
			}
		}
	})
	b.Run("KeysThenGet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, k := range s.Keys() {
				if _, err := s.Get(k); err != nil {
					b.Fatal(err)
				}
				n++
			}
			if n != 5000 {
				b.Fatal("short scan")
			}
		}
	})
}
