package storage

import (
	"os"
	"sync"
	"sync/atomic"
)

// Runtime I/O error injection. The crash harness in fault_test.go
// simulates power loss: after N operations everything fails forever and
// the process is assumed dead. ErrInjector simulates the other failure
// family — EIO, ENOSPC, EDQUOT, short writes — where the operation
// fails but the process keeps running and must degrade gracefully
// instead of corrupting itself. It has two modes:
//
//   - FailOp(n, err, short): exactly the nth filesystem operation fails
//     with err (optionally tearing a write); every other operation
//     succeeds. TestIOFaultMatrix sweeps n over the whole write/rotate/
//     compact/manifest sequence.
//   - Arm(err, ops...): every matching operation fails with err until
//     Clear — a disk that stays full. The server's injected-ENOSPC soak
//     phase and the degradation tests use this.
//
// An injector is handed to Open via Options.FaultInjection; the store
// then routes the active-segment file operations and the compaction/
// manifest fsOps through it. Wrapped files expose their underlying
// *os.File (see osFile), so preallocation, fdatasync, truncation and
// mmap keep working while the injector is idle.

// FaultOp names one injectable filesystem operation class.
type FaultOp uint8

const (
	// FaultCreate covers segment/manifest file creation.
	FaultCreate FaultOp = iota
	// FaultWrite covers WriteAt on segment and manifest files.
	FaultWrite
	// FaultSync covers fsync/fdatasync of segment and manifest files.
	FaultSync
	// FaultRename covers the manifest and compaction-output renames.
	FaultRename
	// FaultRemove covers segment unlinks.
	FaultRemove
	// FaultSyncDir covers directory fsyncs.
	FaultSyncDir
	numFaultOps
)

var faultOpNames = [numFaultOps]string{"create", "write", "sync", "rename", "remove", "syncdir"}

// String names the operation class.
func (op FaultOp) String() string {
	if int(op) < len(faultOpNames) {
		return faultOpNames[op]
	}
	return "unknown"
}

// ErrInjector injects filesystem errors into a live store. Safe for
// concurrent use; the zero value injects nothing and only counts.
type ErrInjector struct {
	mu sync.Mutex
	// seq counts operations attempted since the last FailOp/Reset, so a
	// dry run sizes the fault matrix.
	seq int
	// One-shot schedule: operation number failAt fails with failErr.
	failAt  int
	failErr error
	failOp  FaultOp // recorded when the shot fires, for diagnostics
	tear    bool    // the failing write persists half its bytes first
	// Persistent fault: matching ops fail with armed until Clear.
	armed    error
	armedOps [numFaultOps]bool

	injected atomic.Uint64
}

// NewErrInjector returns an idle injector (counts ops, fails none).
func NewErrInjector() *ErrInjector {
	return &ErrInjector{failAt: -1}
}

// FailOp schedules exactly the nth operation (0-based, counted from
// this call) to fail with err; short additionally tears the write,
// persisting half its bytes. Every other operation succeeds.
func (i *ErrInjector) FailOp(n int, err error, short bool) {
	i.mu.Lock()
	i.seq = 0
	i.failAt, i.failErr, i.tear = n, err, short
	i.mu.Unlock()
}

// Arm makes every matching operation fail with err until Clear. With
// no ops listed, every operation class fails.
func (i *ErrInjector) Arm(err error, ops ...FaultOp) {
	i.mu.Lock()
	if len(ops) == 0 {
		for o := range i.armedOps {
			i.armedOps[o] = true
		}
	} else {
		i.armedOps = [numFaultOps]bool{}
		for _, o := range ops {
			i.armedOps[o] = true
		}
	}
	i.armed = err
	i.mu.Unlock()
}

// Clear disables both the one-shot schedule and the armed fault.
func (i *ErrInjector) Clear() {
	i.mu.Lock()
	i.failAt, i.failErr, i.tear = -1, nil, false
	i.armed = nil
	i.armedOps = [numFaultOps]bool{}
	i.mu.Unlock()
}

// Ops reports operations counted since the last FailOp (dry-run matrix
// sizing).
func (i *ErrInjector) Ops() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.seq
}

// Injected reports how many operations failed by injection.
func (i *ErrInjector) Injected() uint64 { return i.injected.Load() }

// check classifies one operation: a nil error means proceed; tear is
// only ever true for FaultWrite.
func (i *ErrInjector) check(op FaultOp) (err error, tear bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := i.seq
	i.seq++
	if i.armed != nil && i.armedOps[op] {
		i.injected.Add(1)
		return i.armed, false
	}
	if i.failAt >= 0 && n == i.failAt {
		i.injected.Add(1)
		i.failOp = op
		return i.failErr, op == FaultWrite && i.tear
	}
	return nil, false
}

// errFile wraps an *os.File, routing writes and syncs through the
// injector. Reads and closes never fail: I/O errors on the read path
// are a different failure domain (scrub/quarantine handle latent
// corruption; see scrub.go).
type errFile struct {
	f *os.File
	i *ErrInjector
}

func (e *errFile) ReadAt(p []byte, off int64) (int, error) { return e.f.ReadAt(p, off) }

func (e *errFile) WriteAt(p []byte, off int64) (int, error) {
	if err, tear := e.i.check(FaultWrite); err != nil {
		if tear {
			n, _ := e.f.WriteAt(p[:len(p)/2], off)
			return n, err
		}
		return 0, err
	}
	return e.f.WriteAt(p, off)
}

func (e *errFile) Sync() error {
	if err, _ := e.i.check(FaultSync); err != nil {
		return err
	}
	return e.f.Sync()
}

func (e *errFile) Close() error { return e.f.Close() }

// underlyingFile exposes the wrapped descriptor so preallocation,
// fdatasync, truncation and mmap still reach the real file.
func (e *errFile) underlyingFile() *os.File { return e.f }

// fileUnwrapper is implemented by seam wrappers that are still backed
// by a real descriptor. The crash harness's faultFile deliberately does
// NOT implement it: a crashed process gets no further use of the fd.
type fileUnwrapper interface{ underlyingFile() *os.File }

// osFile unwraps a segfile to its *os.File, or nil for pure test seams.
func osFile(f segfile) *os.File {
	switch v := f.(type) {
	case *os.File:
		return v
	case fileUnwrapper:
		return v.underlyingFile()
	}
	return nil
}

// wrapFile routes a segment file's writes through the injector.
func (i *ErrInjector) wrapFile(f *os.File) segfile {
	return &errFile{f: f, i: i}
}

// wrapFS routes the compaction/manifest filesystem seam through the
// injector.
func (i *ErrInjector) wrapFS(real fsOps) fsOps {
	return fsOps{
		create: func(path string) (segfile, error) {
			if err, _ := i.check(FaultCreate); err != nil {
				return nil, err
			}
			f, err := real.create(path)
			if err != nil {
				return nil, err
			}
			if of, ok := f.(*os.File); ok {
				return i.wrapFile(of), nil
			}
			return f, nil
		},
		rename: func(oldpath, newpath string) error {
			if err, _ := i.check(FaultRename); err != nil {
				return err
			}
			return real.rename(oldpath, newpath)
		},
		remove: func(path string) error {
			if err, _ := i.check(FaultRemove); err != nil {
				return err
			}
			return real.remove(path)
		},
		syncDir: func(dir string) error {
			if err, _ := i.check(FaultSyncDir); err != nil {
				return err
			}
			return real.syncDir(dir)
		},
	}
}
