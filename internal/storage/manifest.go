package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Compaction manifest. Incremental compaction rewrites the live records
// of a victim segment set into fresh output segments while readers and
// writers keep running, so recovery can observe the directory mid-swap.
// The manifest makes that window crash-safe: it is the single commit
// point of a compaction, written atomically (temp file, fsync, rename,
// directory fsync). A crash recovers to exactly one of two states:
//
//   - manifest without the compaction's entries: the outputs are
//     unreferenced *.seg.tmp files, deleted at Open; the victims replay
//     as before. Pre-compaction state.
//   - manifest with the entries: half-renamed outputs are rolled
//     forward from *.seg.tmp to *.seg (their bytes were fsynced before
//     the manifest committed), victims on the Drop list are unlinked.
//     Post-compaction state.
//
// The Ranks map solves the ordering problem incremental compaction
// introduces. Replay resolves multi-segment key conflicts by "highest
// segment wins", but a compaction output holds *copies* of old records
// under a fresh, high segment ID — raw ID order would let a stale copy
// beat a newer record a concurrent writer appended to the active
// segment. Each output therefore carries a rank: the highest rank among
// its victims. Replay merges segments in (rank, id) order, which slots
// the copies exactly where the victims were (the id tiebreak puts an
// output after a still-present victim it replaced). The active segment
// always has rank == id greater than any victim's, so concurrent
// appends still win.
type manifest struct {
	Version int `json:"version"`
	// Ranks maps compaction-output segment IDs to their replay rank.
	// Segments absent from the map rank as their own ID.
	Ranks map[uint64]uint64 `json:"ranks,omitempty"`
	// Drop lists victim segment IDs superseded by the most recent
	// compaction; their files are unlinked at runtime once readers
	// drain, or at the next Open after a crash.
	Drop []uint64 `json:"drop,omitempty"`
}

// manifestName is the manifest file name inside a store directory.
const manifestName = "MANIFEST"

// manifestVersion is the current manifest format version.
const manifestVersion = 1

// rankOf returns the replay rank of a segment ID.
func (m *manifest) rankOf(id uint64) uint64 {
	if r, ok := m.Ranks[id]; ok {
		return r
	}
	return id
}

// clone deep-copies the manifest so a compaction can stage its
// successor without mutating the committed state.
func (m *manifest) clone() manifest {
	c := manifest{Version: m.Version, Ranks: make(map[uint64]uint64, len(m.Ranks))}
	for id, r := range m.Ranks {
		c.Ranks[id] = r
	}
	c.Drop = append([]uint64(nil), m.Drop...)
	return c
}

// loadManifest reads the manifest from dir; a missing file is an empty
// manifest (the state of every store created before compaction ran).
func loadManifest(dir string) (manifest, error) {
	m := manifest{Version: manifestVersion}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return m, fmt.Errorf("storage: reading manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("%w: manifest version %d", ErrCorrupt, m.Version)
	}
	return m, nil
}

// writeManifest atomically replaces the manifest on disk: write a temp
// file, fsync it, rename over the old manifest, fsync the directory.
// Every step goes through the store's fs hooks so the crash-injection
// harness can fail any of them. committed reports whether the rename
// landed: once it has, the new manifest may be durable even if the
// directory fsync then fails, so the caller must treat the compaction
// as possibly committed — never roll back state the manifest already
// promises (outputs must survive, victims stay sentenced).
func (s *Store) writeManifest(m manifest) (committed bool, err error) {
	data, err := json.Marshal(m)
	if err != nil {
		return false, fmt.Errorf("storage: encoding manifest: %w", err)
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := s.fs.create(tmp)
	if err != nil {
		return false, fmt.Errorf("storage: creating manifest temp: %w", err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return false, fmt.Errorf("storage: writing manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return false, fmt.Errorf("storage: syncing manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return false, fmt.Errorf("storage: closing manifest temp: %w", err)
	}
	if err := s.fs.rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return false, fmt.Errorf("storage: committing manifest: %w", err)
	}
	if err := s.fs.syncDir(s.dir); err != nil {
		return true, fmt.Errorf("storage: syncing dir after manifest commit: %w", err)
	}
	return true, nil
}

// segfile is the slice of *os.File the segment layer needs. Compaction
// outputs and manifest writes go through fsOps.create so tests can
// substitute fault-injecting files; everything else uses *os.File
// directly.
type segfile interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Close() error
}

// fsOps is the filesystem seam for the compaction/manifest path. The
// crash-injection harness swaps these for versions that fail (and tear
// writes) after a budget of operations, simulating power loss at every
// step of a compaction.
type fsOps struct {
	create  func(path string) (segfile, error)
	rename  func(oldpath, newpath string) error
	remove  func(path string) error
	syncDir func(dir string) error
}

// osFS returns the production filesystem operations.
func osFS() fsOps {
	return fsOps{
		create: func(path string) (segfile, error) {
			return os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		},
		rename:  os.Rename,
		remove:  os.Remove,
		syncDir: syncDir,
	}
}

// syncDir fsyncs a directory, making renames and creations inside it
// durable. Rotation calls it directly (the active-segment path is
// deliberately outside the fault-injection seam, like the segment
// create itself); the compaction/manifest protocol goes through
// fsOps.syncDir so the crash harness can fail it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
