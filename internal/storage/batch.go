package storage

import "runtime"

// WriteBatch persists a mixed put/tombstone record set through one
// group-commit round: the whole set joins a single commit group, so it
// costs one WriteAt and — under SyncEveryPut — one fsync, shared with
// any concurrent writers that piled into the same group. The returned
// slice aligns with the inputs: nil exactly when that record reached
// the configured durability level (or resolved as a redundant-tombstone
// no-op). A mid-batch I/O fault splits the set exactly like a fault
// splits a concurrent group — the durable prefix is applied and
// acknowledged, every other record carries the fault and is never
// visible.
//
// The signature uses parallel slices rather than a request struct so
// callers behind an interface boundary (recipedb.BatchBackend) can
// declare it without importing this package.
func (s *Store) WriteBatch(keys []string, values [][]byte, tombstones []bool) []error {
	n := len(keys)
	if len(values) != n || len(tombstones) != n {
		panic("storage: WriteBatch input slices differ in length")
	}
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if s.opts.ReadOnly {
		for i := range errs {
			errs[i] = ErrReadOnly
		}
		return errs
	}
	reqs := make([]*commitReq, n)
	for i := 0; i < n; i++ {
		rec := record{key: []byte(keys[i]), tombstone: tombstones[i]}
		if !rec.tombstone {
			rec.value = values[i]
		}
		// Frame into private buffers (no framePool): all frames stay
		// alive until the whole group commits, so pooling would only
		// churn.
		framed, err := appendRecord(nil, rec)
		if err != nil {
			// Unframeable records (oversized key/value) poison the
			// whole batch before any byte is written: callers treat
			// the batch as one atomic submission, and a client error
			// this early must not let later records silently succeed
			// while an earlier one was dropped.
			for j := range errs {
				errs[j] = err
			}
			return errs
		}
		reqs[i] = &commitReq{key: keys[i], rec: rec, framed: framed}
	}
	s.submitMany(reqs)
	for i, req := range reqs {
		errs[i] = req.result()
	}
	return errs
}

// submitMany drives a set of requests through group commit as one
// joined unit and returns once some leader (possibly this goroutine)
// has committed the group containing them. It mirrors submit
// (commit.go) — leader fast path with the adaptive grouping yield,
// follower path that queues and races for the token — except that the
// whole request set joins one group together, preserving its internal
// order.
func (s *Store) submitMany(reqs []*commitReq) {
	// Fast-fail while the write path is degraded; the commit leader
	// re-checks under the token, so this is advisory only.
	if err := s.writeGate(); err != nil {
		for _, req := range reqs {
			req.err = err
		}
		return
	}
	select {
	case s.commitTok <- struct{}{}:
		if s.grouping {
			runtime.Gosched()
		}
		s.pendMu.Lock()
		g := s.pending
		s.pending = nil
		if g == nil {
			g = &commitGroup{} // solo commit: nobody to signal
		}
		g.reqs = append(g.reqs, reqs...)
		s.pendMu.Unlock()
		s.grouping = len(g.reqs) > len(reqs)
		g.err = s.commit(g)
		if g.done != nil {
			close(g.done)
		}
		<-s.commitTok
		return
	default:
	}

	s.pendMu.Lock()
	if s.closed.Load() {
		s.pendMu.Unlock()
		for _, req := range reqs {
			req.err = ErrClosed
		}
		return
	}
	g := s.pending
	if g == nil {
		g = &commitGroup{done: make(chan struct{})}
		s.pending = g
	}
	g.reqs = append(g.reqs, reqs...)
	s.pendMu.Unlock()

	select {
	case s.commitTok <- struct{}{}:
		s.commitNext()
		<-s.commitTok
	case <-g.done:
	}
	<-g.done
}
