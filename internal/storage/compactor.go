package storage

import (
	"sync"
	"sync/atomic"
	"time"
)

// Background incremental compactor. A single goroutine wakes every
// CompactInterval, selects sealed segments whose garbage ratio reached
// CompactGarbageRatio, and rewrites them through compactSegments —
// reads and writes proceed throughout (see compact.go). Explicit
// Compact calls and the background loop serialize on compactMu.

// compactorState tracks the background goroutine's lifecycle.
type compactorState struct {
	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
	// wedged refuses further compactions after a post-commit failure
	// (see ErrCompactorWedged); cleared only by reopening the store.
	wedged atomic.Bool
	// lastErr is the most recent background pass failure, for
	// observability (CompactionStats.LastError).
	lastErr atomic.Value // string
}

// compactionCounters accumulate across the store's lifetime.
type compactionCounters struct {
	runs      atomic.Uint64
	segments  atomic.Uint64
	reclaimed atomic.Int64
}

// CompactionStats reports compaction activity for health endpoints and
// tools.
type CompactionStats struct {
	// Runs counts completed incremental passes that rewrote at least
	// one segment.
	Runs uint64
	// SegmentsCompacted counts victim segments rewritten.
	SegmentsCompacted uint64
	// BytesReclaimed is the net on-disk shrink across all passes.
	BytesReclaimed int64
	// Running reports whether the background compactor goroutine is
	// alive.
	Running bool
	// Wedged reports a post-commit failure froze compaction until the
	// store is reopened.
	Wedged bool
	// LastError is the most recent background pass failure, if any.
	LastError string
}

// CompactionStats returns a snapshot of compaction activity.
func (s *Store) CompactionStats() CompactionStats {
	s.compactor.mu.Lock()
	running := s.compactor.stop != nil
	s.compactor.mu.Unlock()
	st := CompactionStats{
		Runs:              s.cstats.runs.Load(),
		SegmentsCompacted: s.cstats.segments.Load(),
		BytesReclaimed:    s.cstats.reclaimed.Load(),
		Running:           running,
		Wedged:            s.compactor.wedged.Load(),
	}
	if e, ok := s.compactor.lastErr.Load().(string); ok {
		st.LastError = e
	}
	return st
}

// startCompactor launches the background loop. Called from Open; also
// usable by tests. No-op if already running.
func (s *Store) startCompactor(interval time.Duration, ratio float64) {
	s.compactor.mu.Lock()
	defer s.compactor.mu.Unlock()
	if s.compactor.stop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.compactor.stop, s.compactor.done = stop, done
	go s.compactLoop(interval, ratio, stop, done)
}

// stopCompactor signals the loop and waits for any in-flight pass to
// finish. Idempotent; called by Close before it freezes the store.
func (s *Store) stopCompactor() {
	s.compactor.mu.Lock()
	stop, done := s.compactor.stop, s.compactor.done
	s.compactor.stop, s.compactor.done = nil, nil
	s.compactor.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// compactLoop is the background goroutine body.
func (s *Store) compactLoop(interval time.Duration, ratio float64, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if s.closed.Load() {
				return
			}
			if _, err := s.compactOnce(ratio); err != nil {
				s.compactor.lastErr.Store(err.Error())
			} else {
				s.compactor.lastErr.Store("")
			}
		}
	}
}

// compactOnce runs one victim-selection + compaction pass, returning
// how many segments were rewritten. Exported behavior lives behind
// Compact and the background loop; tests drive this directly.
func (s *Store) compactOnce(ratio float64) (int, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	// Skipping while the write path is degraded is load-bearing, not
	// just polite: compaction output writes would hit the same failing
	// disk, and rotation would fsync the poisoned active segment.
	if s.compactor.wedged.Load() || s.closed.Load() || s.Health() != HealthHealthy {
		return 0, nil
	}
	victims := s.selectVictims(ratio)
	if len(victims) == 0 {
		return 0, nil
	}
	if err := s.compactSegments(victims); err != nil {
		return 0, err
	}
	return len(victims), nil
}

// selectVictims picks the sealed segments whose garbage ratio reached
// the threshold. The active segment is never a victim — it is still
// being appended to.
func (s *Store) selectVictims(ratio float64) []*segment {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	var victims []*segment
	for _, seg := range s.segments {
		if seg == s.active || seg.size == 0 || seg.quarantined.Load() {
			// A quarantined segment's scan would fail on the corruption;
			// scrub salvage retires it through its own keydir-driven
			// plan instead.
			continue
		}
		if seg.garbageRatio() >= ratio {
			victims = append(victims, seg)
		}
	}
	return victims
}
