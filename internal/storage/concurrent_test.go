package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersSingleWriter exercises the documented concurrency
// contract under the race detector: one writer streams puts and deletes
// while readers hammer Get/Has/Keys/Stats.
func TestConcurrentReadersSingleWriter(t *testing.T) {
	s := openTemp(t, Options{MaxSegmentBytes: 4096})
	// Seed some stable keys readers can always find.
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("stable%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readErrs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("stable%02d", (i+r)%50)
				if _, err := s.Get(key); err != nil {
					readErrs <- fmt.Errorf("Get(%s): %w", key, err)
					return
				}
				s.Has("volatile")
				if s.Len() < 50 {
					readErrs <- errors.New("stable keys disappeared")
					return
				}
				_ = s.Stats()
			}
		}(r)
	}
	for i := 0; i < 500; i++ {
		if err := s.Put("volatile", []byte(fmt.Sprintf("gen%d", i))); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := s.Delete("volatile"); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(readErrs)
	for err := range readErrs {
		t.Error(err)
	}
}

// TestConcurrentWriters verifies that parallel writers to distinct keys
// serialize safely and nothing is lost.
func TestConcurrentWriters(t *testing.T) {
	s := openTemp(t, Options{MaxSegmentBytes: 2048})
	var wg sync.WaitGroup
	const writers, perWriter = 8, 100
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-k%03d", w, i)
				if err := s.Put(key, []byte(key)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", s.Len(), writers*perWriter)
	}
	// Spot-check values landed intact.
	for w := 0; w < writers; w++ {
		key := fmt.Sprintf("w%d-k%03d", w, perWriter-1)
		v, err := s.Get(key)
		if err != nil || string(v) != key {
			t.Errorf("Get(%s) = %q, %v", key, v, err)
		}
	}
}
