package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersSingleWriter exercises the documented concurrency
// contract under the race detector: one writer streams puts and deletes
// while readers hammer Get/Has/Keys/Stats.
func TestConcurrentReadersSingleWriter(t *testing.T) {
	s := openTemp(t, Options{MaxSegmentBytes: 4096})
	// Seed some stable keys readers can always find.
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("stable%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readErrs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("stable%02d", (i+r)%50)
				if _, err := s.Get(key); err != nil {
					readErrs <- fmt.Errorf("Get(%s): %w", key, err)
					return
				}
				s.Has("volatile")
				if s.Len() < 50 {
					readErrs <- errors.New("stable keys disappeared")
					return
				}
				_ = s.Stats()
			}
		}(r)
	}
	for i := 0; i < 500; i++ {
		if err := s.Put("volatile", []byte(fmt.Sprintf("gen%d", i))); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := s.Delete("volatile"); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(readErrs)
	for err := range readErrs {
		t.Error(err)
	}
}

// TestConcurrentStressThroughCompaction mixes Get/Put/Delete/Keys/
// Stats/Len/Fold across shards while segments rotate and a compactor
// loops, under the race detector. Stable keys must stay visible and
// internally consistent through every compaction cycle.
func TestConcurrentStressThroughCompaction(t *testing.T) {
	s := openTemp(t, Options{MaxSegmentBytes: 2048, CompactionFloorBytes: 1})
	const stable = 64
	for i := 0; i < stable; i++ {
		if err := s.Put(fmt.Sprintf("stable/%03d", i), []byte("anchor")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan error, 16)
	report := func(err error) {
		select {
		case fail <- err:
		default:
		}
	}

	// Readers: point reads, membership, consistent-view scans.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("stable/%03d", (i*7+r)%stable)
				if v, err := s.Get(key); err != nil || string(v) != "anchor" {
					report(fmt.Errorf("Get(%s) = %q, %v", key, v, err))
					return
				}
				if n := s.Len(); n < stable {
					report(fmt.Errorf("Len = %d < %d stable keys", n, stable))
					return
				}
				if st := s.Stats(); st.Keys < stable {
					report(fmt.Errorf("Stats.Keys = %d < %d", st.Keys, stable))
					return
				}
				if i%32 == 0 {
					if ks := s.KeysWithPrefix("stable/"); len(ks) != stable {
						report(fmt.Errorf("KeysWithPrefix(stable/) = %d keys, want %d", len(ks), stable))
						return
					}
				}
			}
		}(r)
	}

	// Folder: every consistent snapshot must contain all stable keys.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			seen := 0
			err := s.Fold(func(k string, v []byte) error {
				if len(k) >= 7 && k[:7] == "stable/" {
					if string(v) != "anchor" {
						return fmt.Errorf("fold saw %s = %q", k, v)
					}
					seen++
				}
				return nil
			})
			if err != nil {
				report(fmt.Errorf("Fold: %w", err))
				return
			}
			if seen != stable {
				report(fmt.Errorf("Fold snapshot saw %d stable keys, want %d", seen, stable))
				return
			}
		}
	}()

	// Writers: churn volatile keys spread across shards.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("volatile/w%d/%03d", w, i%97)
				if err := s.Put(key, []byte(fmt.Sprintf("gen%d", i))); err != nil {
					report(fmt.Errorf("Put(%s): %w", key, err))
					return
				}
				if i%5 == 4 {
					if err := s.Delete(key); err != nil {
						report(fmt.Errorf("Delete(%s): %w", key, err))
						return
					}
				}
			}
		}(w)
	}

	// Compactor: force the stop-the-world path repeatedly while traffic
	// is in flight.
	for c := 0; c < 6; c++ {
		if err := s.Compact(); err != nil {
			t.Fatalf("Compact #%d: %v", c, err)
		}
	}
	close(stop)
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}
	// Final invariants: stable keys intact, stats coherent.
	if n := len(s.KeysWithPrefix("stable/")); n != stable {
		t.Errorf("final stable count = %d, want %d", n, stable)
	}
}

// TestConcurrentDeletesLogOneTombstone races many deleters of one key:
// the serialized commit check must let exactly one tombstone through.
func TestConcurrentDeletesLogOneTombstone(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("contested", []byte("v")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Delete("contested"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if s.Has("contested") {
		t.Error("key survived deletion")
	}
	s.Close()
	if n := countTombstones(t, dir, "contested"); n != 1 {
		t.Errorf("log has %d tombstones, want exactly 1", n)
	}
}

// TestConcurrentWriters verifies that parallel writers to distinct keys
// serialize safely and nothing is lost.
func TestConcurrentWriters(t *testing.T) {
	s := openTemp(t, Options{MaxSegmentBytes: 2048})
	var wg sync.WaitGroup
	const writers, perWriter = 8, 100
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-k%03d", w, i)
				if err := s.Put(key, []byte(key)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", s.Len(), writers*perWriter)
	}
	// Spot-check values landed intact.
	for w := 0; w < writers; w++ {
		key := fmt.Sprintf("w%d-k%03d", w, perWriter-1)
		v, err := s.Get(key)
		if err != nil || string(v) != key {
			t.Errorf("Get(%s) = %q, %v", key, v, err)
		}
	}
}
