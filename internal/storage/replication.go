package storage

// Replication export hooks. A primary ships its log to read-only
// followers as raw segment bytes: sealed segments are immutable (safe
// to copy at any time), and the active segment is shipped only up to
// its durable watermark (syncedSize) — every byte at or below the
// watermark is a whole, acknowledged, fsynced record, while bytes past
// it may still be torn, retried into a fresh segment by write
// recovery, or never acknowledged at all. A follower that mirrors the
// manifest plus each segment's shipped prefix can therefore Open the
// mirror (read-only) at any moment and recover exactly a prefix of the
// primary's acknowledged history. See README.md ("Replication
// protocol") and internal/replica for the shipping protocol built on
// these hooks.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// ManifestFileName is the manifest's file name inside a store
// directory, exported so a replica follower can mirror the primary's
// manifest bytes under the name Open expects.
const ManifestFileName = manifestName

// SegmentFileName returns the file name segment id occupies inside a
// store directory ("00000007.seg"). Followers mirror shipped bytes
// under the same names so the mirror directory opens as a regular
// store.
func SegmentFileName(id uint64) string {
	return fmt.Sprintf("%08d%s", id, segmentExt)
}

// ErrSegmentGone is the typed miss for a shipped segment the store no
// longer serves: retired by compaction, dropped by salvage, or
// quarantined by the scrubber. A follower that hits it must re-fetch
// the replication state and reconcile — the segment's live records have
// been re-homed under other (rank, id) positions.
var ErrSegmentGone = errors.New("storage: segment gone")

// SegmentInfo describes one shippable segment in a replication
// snapshot.
type SegmentInfo struct {
	// ID is the segment's file identity; Rank its replay merge-order
	// key (equal to ID except for compaction/salvage outputs, which
	// inherit their victims' rank — see manifest.go).
	ID   uint64 `json:"id"`
	Rank uint64 `json:"rank"`
	// Size is the shippable byte prefix: the full file size for sealed
	// segments, the durable watermark (syncedSize) for the active one.
	Size int64 `json:"size"`
	// Sealed reports whether the segment can still grow. A sealed
	// segment's bytes are immutable; an unsealed one's Size only ever
	// advances (until a later snapshot stops listing it as unsealed).
	Sealed bool `json:"sealed"`
	// Quarantined marks a segment the scrubber found corrupt: its live
	// records are still served (and will be salvaged into a ranked
	// output soon), but its bytes cannot be shipped — ReadSegmentAt
	// answers ErrSegmentGone. A follower already holding the full
	// prefix keeps its (pre-rot) copy; one that does not must wait for
	// the salvage to land in a later snapshot.
	Quarantined bool `json:"quarantined,omitempty"`
}

// ReplicationState returns the committed manifest (verbatim MANIFEST
// wire bytes) and the shippable segment set as one consistent pair:
// both are sampled under the compaction lock, so no compaction, scrub
// salvage or write recovery can commit a manifest the segment list
// does not reflect. Quarantined segments are listed but flagged —
// their bytes failed CRC and must not be shipped; fetches racing a
// quarantine get ErrSegmentGone from ReadSegmentAt and re-sync.
func (s *Store) ReplicationState() (manifestJSON []byte, segs []SegmentInfo, err error) {
	if s.closed.Load() {
		return nil, nil, ErrClosed
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	manifestJSON, err = json.Marshal(s.man)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: encoding manifest: %w", err)
	}
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	segs = make([]SegmentInfo, 0, len(s.segments))
	for id, seg := range s.segments {
		info := SegmentInfo{ID: id, Rank: seg.rank, Quarantined: seg.quarantined.Load()}
		if seg == s.active {
			// The active segment's size is mutated under the commit
			// token while we only hold segMu, so read the atomic
			// watermark — which is also the shippable boundary.
			info.Size = seg.syncedSize.Load()
		} else {
			info.Size = seg.size
			info.Sealed = true
		}
		segs = append(segs, info)
	}
	return manifestJSON, segs, nil
}

// ReadSegmentAt reads up to limit bytes of segment id starting at off,
// capped at the segment's shippable watermark (file size when sealed,
// durable syncedSize when active). A short or empty result is not an
// error: it means the watermark has not advanced past off yet. Missing
// and quarantined segments return ErrSegmentGone.
func (s *Store) ReadSegmentAt(id uint64, off, limit int64) ([]byte, error) {
	if off < 0 || limit < 0 {
		return nil, fmt.Errorf("storage: negative segment read: off=%d limit=%d", off, limit)
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.segMu.RLock()
	seg := s.segments[id]
	if seg == nil || seg.quarantined.Load() {
		s.segMu.RUnlock()
		return nil, fmt.Errorf("%w: segment %d", ErrSegmentGone, id)
	}
	watermark := seg.size
	if seg == s.active {
		watermark = seg.syncedSize.Load()
	}
	seg.acquire()
	s.segMu.RUnlock()
	defer seg.release()

	if off >= watermark {
		return nil, nil
	}
	n := watermark - off
	if n > limit {
		n = limit
	}
	buf := make([]byte, n)
	if _, err := seg.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("storage: replication read segment %d: %w", id, err)
	}
	return buf, nil
}

// ReplicaRecord is one record decoded from a shipped byte stream.
type ReplicaRecord struct {
	Key       string
	Value     []byte
	Tombstone bool
}

// DecodeRecords parses the complete framed records at the front of buf
// and returns them with the byte count they span. A frame the buffer
// cuts short is not an error — shipping chunks segments at arbitrary
// byte boundaries, so the caller keeps the unconsumed suffix and
// retries once more bytes arrive. A frame that is structurally invalid
// within the available bytes (bad lengths, checksum mismatch,
// tombstone carrying a value) returns ErrCorrupt along with everything
// decoded before it. Keys and values are copied out of buf.
func DecodeRecords(buf []byte) (recs []ReplicaRecord, consumed int64, err error) {
	for {
		rest := buf[consumed:]
		// checksum(4) + flags(1); the shortest header also needs two
		// varint bytes, but let Uvarint report those.
		if len(rest) < 5 {
			return recs, consumed, nil
		}
		want := binary.LittleEndian.Uint32(rest[:4])
		flags := rest[4]
		p := 5
		keyLen, n := binary.Uvarint(rest[p:])
		if n == 0 {
			return recs, consumed, nil // varint cut short by the chunk
		}
		if n < 0 {
			return recs, consumed, fmt.Errorf("%w: bad key length", ErrCorrupt)
		}
		p += n
		valLen, n := binary.Uvarint(rest[p:])
		if n == 0 {
			return recs, consumed, nil
		}
		if n < 0 {
			return recs, consumed, fmt.Errorf("%w: bad value length", ErrCorrupt)
		}
		p += n
		if keyLen == 0 || keyLen > MaxKeyLen || valLen > MaxValueLen {
			return recs, consumed, fmt.Errorf("%w: lengths key=%d value=%d", ErrCorrupt, keyLen, valLen)
		}
		frame := int64(p) + int64(keyLen) + int64(valLen)
		if int64(len(rest)) < frame {
			return recs, consumed, nil // body cut short by the chunk
		}
		if crc32.Checksum(rest[4:frame], castagnoli) != want {
			return recs, consumed, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		tomb := flags&flagTombstone != 0
		if tomb && valLen != 0 {
			return recs, consumed, fmt.Errorf("%w: tombstone with value", ErrCorrupt)
		}
		body := rest[p:frame]
		rec := ReplicaRecord{Key: string(body[:keyLen]), Tombstone: tomb}
		if !tomb {
			rec.Value = append([]byte(nil), body[keyLen:]...)
		}
		recs = append(recs, rec)
		consumed += frame
	}
}
