package storage

import (
	"sync"
	"sync/atomic"
)

// readCache is the hot-key value cache: a sharded, byte-bounded LRU
// over decoded values, keyed by record key. It exists to serve repeat
// point reads — including reads of the still-unmapped active segment —
// without touching the log at all.
//
// Coherence is lock-coupled with the key directory rather than timed:
//
//   - Writers invalidate a key inside the same keydir-shard critical
//     section that updates its entry (applyGroup), so "Put returned"
//     implies "stale cache entry gone".
//   - Readers insert only via Store.cacheFill, which re-verifies under
//     the keydir shard read lock that the directory still points at the
//     exact location the value was read from. An insert racing an
//     overwrite therefore either loses the verification or completes
//     before the writer's invalidation sweeps it out.
//   - Every entry is tagged with the segment it was read from;
//     compaction drops a retired victim's entries (invalidateSegment).
//     Values are immutable across compaction so this is conservative,
//     but it bounds how long a retired segment's bytes stay resident.
//
// Values are copied on the way in and on the way out: callers own the
// slices Get returns and may mutate them freely.
type readCache struct {
	shards []cacheShard
	mask   uint32
	hits   atomic.Uint64
	misses atomic.Uint64
}

// cacheEntry is one resident value on a shard's LRU list.
type cacheEntry struct {
	key        string
	val        []byte
	segID      uint64
	prev, next *cacheEntry
}

// cacheShard is one independently locked partition of the cache.
type cacheShard struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	m        map[string]*cacheEntry
	// head is most recently used, tail least; nil for an empty list.
	head, tail *cacheEntry
}

// readCacheShards partitions the cache so concurrent hot readers on
// different keys rarely contend on one mutex.
const readCacheShards = 16

// cacheEntryOverhead approximates per-entry bookkeeping (map slot,
// list pointers, headers) charged against the byte budget.
const cacheEntryOverhead = 64

// newReadCache builds a cache with a total byte budget split evenly
// across the shards.
func newReadCache(budget int64) *readCache {
	c := &readCache{
		shards: make([]cacheShard, readCacheShards),
		mask:   readCacheShards - 1,
	}
	per := budget / readCacheShards
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].m = make(map[string]*cacheEntry)
	}
	return c
}

// fnv32a hashes key (FNV-1a), the same function the keydir shards use.
func fnv32a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h
}

func (c *readCache) shardFor(key string) *cacheShard {
	return &c.shards[fnv32a(key)&c.mask]
}

// entryCost is the budget charge for one cached value.
func entryCost(key string, val []byte) int64 {
	return int64(len(key)) + int64(len(val)) + cacheEntryOverhead
}

// get returns a copy of the cached value for key, promoting it to most
// recently used.
func (c *readCache) get(key string) ([]byte, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	sh.moveToFront(e)
	out := append([]byte(nil), e.val...)
	sh.mu.Unlock()
	c.hits.Add(1)
	return out, true
}

// add inserts (or refreshes) a value copy tagged with the segment it
// was read from, evicting from the cold end until the shard fits its
// budget. Values whose cost exceeds a whole shard are not cached —
// admitting one would evict everything for a key unlikely to repeat.
func (c *readCache) add(key string, val []byte, segID uint64) {
	sh := c.shardFor(key)
	cost := entryCost(key, val)
	if cost > sh.capacity {
		return
	}
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.bytes += cost - entryCost(e.key, e.val)
		e.val = append(e.val[:0], val...)
		e.segID = segID
		sh.moveToFront(e)
	} else {
		e := &cacheEntry{key: key, val: append([]byte(nil), val...), segID: segID}
		sh.m[key] = e
		sh.pushFront(e)
		sh.bytes += cost
	}
	for sh.bytes > sh.capacity && sh.tail != nil {
		sh.drop(sh.tail)
	}
	sh.mu.Unlock()
}

// invalidate removes key. Callers on the write path hold the key's
// keydir shard lock, which is what makes invalidation linearize with
// the directory update (see the type comment).
func (c *readCache) invalidate(key string) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.drop(e)
	}
	sh.mu.Unlock()
}

// invalidateSegments removes every entry read from the given segments
// in one sweep of each shard — compaction passes its whole victim set,
// so retirement costs O(resident entries) regardless of how many
// victims a pass rewrote.
func (c *readCache) invalidateSegments(segIDs map[uint64]bool) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			if segIDs[e.segID] {
				sh.drop(e)
			}
		}
		sh.mu.Unlock()
	}
}

// stats sums residency across shards.
func (c *readCache) stats() (entries int, bytes, capacity int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries += len(sh.m)
		bytes += sh.bytes
		capacity += sh.capacity
		sh.mu.Unlock()
	}
	return entries, bytes, capacity
}

// --- intrusive LRU list (shard mutex held) ---

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *cacheShard) moveToFront(e *cacheEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

func (sh *cacheShard) drop(e *cacheEntry) {
	sh.unlink(e)
	delete(sh.m, e.key)
	sh.bytes -= entryCost(e.key, e.val)
}
