package storage

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// Parallel segment replay. Open scans every segment file concurrently:
// each worker folds its segment into a per-segment map holding the last
// record seen for each key (records within one file are already in
// offset order). The per-segment maps then merge serially in ascending
// (rank, segID) order — rank equals segID except for compaction
// outputs, which inherit their victims' rank from the manifest (see
// manifest.go) — so the per-key winner is exactly the record a serial,
// record-by-record replay of the logical log would pick. Dead bytes
// fall out of the same invariant, now per segment: bytes superseded
// within a file are its size minus its surviving entries; bytes
// superseded across files are charged to the file holding the loser.

// segEntry is the last record for one key within one segment.
type segEntry struct {
	off       int64
	length    int64
	valLen    int
	tombstone bool
}

// segScan is one worker's result for one segment.
type segScan struct {
	entries map[string]segEntry
	size    int64 // post-repair byte size == sum of framed record lengths
	err     error
}

// loadSegments rebuilds the key directory from the segment files,
// scanning up to opts.ReplayWorkers files in parallel. Only Open calls
// this, so shard maps are written without locks. The newest segment in
// merge order — always the previous process's active segment, since
// compaction outputs rank below it — gets torn-tail repair.
func (s *Store) loadSegments(ids []uint64) error {
	if len(ids) == 0 {
		return nil
	}
	// Merge order: ascending (rank, id). ids arrive id-sorted; a stable
	// re-sort by rank keeps the id tiebreak.
	sort.SliceStable(ids, func(i, j int) bool { return s.man.rankOf(ids[i]) < s.man.rankOf(ids[j]) })

	scans := make([]segScan, len(ids))
	workers := s.opts.ReplayWorkers
	if workers > len(ids) {
		workers = len(ids)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				scans[i] = scanOneSegment(segmentPath(s.dir, ids[i]), i == len(ids)-1)
			}
		}()
	}
	for i := range ids {
		work <- i
	}
	close(work)
	wg.Wait()

	// Merge in (rank, id) order; within a segment the map holds only
	// the newest record per key, so assignment order equals log order
	// and later segments override earlier ones.
	for i, id := range ids {
		sc := &scans[i]
		if sc.err != nil {
			return sc.err
		}
		path := segmentPath(s.dir, id)
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("storage: opening segment: %w", err)
		}
		var sf segfile = f
		if i == len(ids)-1 && s.opts.FaultInjection != nil {
			// Only the recovered active segment is ever written again;
			// sealed segments stay unwrapped (read-only, mappable).
			sf = s.opts.FaultInjection.wrapFile(f)
		}
		// Replayed bytes are as durable as this disk gets: they were
		// read back from it, so the durable boundary is the full size.
		seg := &segment{id: id, path: path, f: sf, size: sc.size, rank: s.man.rankOf(id)}
		seg.syncedSize.Store(sc.size)
		s.segments[id] = seg
		if i == len(ids)-1 {
			s.active = seg
		} else {
			// Sealed segments are immutable from here on; map them so
			// point reads skip the pread syscall.
			s.mapSegment(seg)
		}
		// Records superseded within this file never reached the
		// per-segment map; they are this file's intra-segment garbage.
		intra := sc.size
		for _, e := range sc.entries {
			intra -= e.length
		}
		seg.dead.Add(intra)
		for k, e := range sc.entries {
			sh := s.shardFor(k)
			if prev, ok := sh.m[k]; ok {
				s.segments[prev.segID].dead.Add(prev.length)
			}
			if e.tombstone {
				delete(sh.m, k)
				seg.dead.Add(e.length)
				continue
			}
			sh.m[k] = keyLoc{segID: id, offset: e.off, length: e.length, valLen: e.valLen}
		}
	}
	return nil
}

// scanOneSegment folds one segment file into its per-key last-record
// map. repairTail truncates a torn final record (newest segment only).
func scanOneSegment(path string, repairTail bool) segScan {
	entries := make(map[string]segEntry)
	size, err := scanSegment(path, repairTail, func(rec record, off, length int64) error {
		entries[string(rec.key)] = segEntry{
			off:       off,
			length:    length,
			valLen:    len(rec.value),
			tombstone: rec.tombstone,
		}
		return nil
	})
	return segScan{entries: entries, size: size, err: err}
}
