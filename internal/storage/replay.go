package storage

import (
	"fmt"
	"os"
	"sync"
)

// Parallel segment replay. Open scans every segment file concurrently:
// each worker folds its segment into a per-segment map holding the last
// record seen for each key (records within one file are already in
// offset order). The per-segment maps then merge serially in ascending
// segment-ID order, so the per-key winner is exactly the record with
// the highest (segID, offset) — byte-identical keydir state to a
// serial, record-by-record replay of the whole log. Dead bytes fall out
// of the same invariant: every scanned byte is either live in the final
// directory or reclaimable, so dead = totalScanned - live.

// segEntry is the last record for one key within one segment.
type segEntry struct {
	off       int64
	length    int64
	valLen    int
	tombstone bool
}

// segScan is one worker's result for one segment.
type segScan struct {
	entries map[string]segEntry
	size    int64 // post-repair byte size == sum of framed record lengths
	err     error
}

// loadSegments rebuilds the key directory from the segment files,
// scanning up to opts.ReplayWorkers files in parallel. Only Open calls
// this, so shard maps are written without locks.
func (s *Store) loadSegments(ids []uint64) error {
	if len(ids) == 0 {
		return nil
	}
	scans := make([]segScan, len(ids))
	workers := s.opts.ReplayWorkers
	if workers > len(ids) {
		workers = len(ids)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				scans[i] = scanOneSegment(segmentPath(s.dir, ids[i]), i == len(ids)-1)
			}
		}()
	}
	for i := range ids {
		work <- i
	}
	close(work)
	wg.Wait()

	// Merge in ascending segment order; within a segment the map holds
	// only the newest record per key, so assignment order equals log
	// order and later segments override earlier ones.
	var total int64
	for i, id := range ids {
		sc := &scans[i]
		if sc.err != nil {
			return sc.err
		}
		path := segmentPath(s.dir, id)
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("storage: opening segment: %w", err)
		}
		seg := &segment{id: id, path: path, f: f, size: sc.size}
		s.segments[id] = seg
		if i == len(ids)-1 {
			s.active = seg
		}
		total += sc.size
		for k, e := range sc.entries {
			sh := s.shardFor(k)
			if e.tombstone {
				delete(sh.m, k)
				continue
			}
			sh.m[k] = keyLoc{segID: id, offset: e.off, length: e.length, valLen: e.valLen}
		}
	}
	var live int64
	for i := range s.shards {
		for _, loc := range s.shards[i].m {
			live += loc.length
		}
	}
	s.deadBytes.Store(total - live)
	return nil
}

// scanOneSegment folds one segment file into its per-key last-record
// map. repairTail truncates a torn final record (newest segment only).
func scanOneSegment(path string, repairTail bool) segScan {
	entries := make(map[string]segEntry)
	size, err := scanSegment(path, repairTail, func(rec record, off, length int64) error {
		entries[string(rec.key)] = segEntry{
			off:       off,
			length:    length,
			valLen:    len(rec.value),
			tombstone: rec.tombstone,
		}
		return nil
	})
	return segScan{entries: entries, size: size, err: err}
}
