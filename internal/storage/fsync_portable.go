//go:build !linux

package storage

import "os"

// datasync falls back to a full fsync where fdatasync is unavailable;
// Sync is the portable durability baseline (on darwin, Go's
// File.Sync already issues F_FULLFSYNC).
func datasync(f *os.File) error { return f.Sync() }

// preallocate is a no-op off linux: segments grow by appending, the
// pre-preallocation behavior, and replay never sees zero tails.
func preallocate(f *os.File, size int64) error { return nil }
