package storage

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
)

// Read-path benchmarks: the same hot-key point-read workload served
// three ways — pread (the pre-mmap engine), the mmap path, and mmap
// plus the hot-key cache. CI exports these as BENCH_readpath.json and
// the regression gate watches BenchmarkReadPathHotGet.

// readBenchKeys/readBenchHot size the working set: enough records to
// span several sealed segments, with a small hot set the parallel
// readers hammer — the shape an HTTP serving tier produces.
const (
	readBenchKeys    = 4096
	readBenchHot     = 64
	readBenchValSize = 128
)

// fillReadBench populates a store and returns the hot key set, drawn
// from the first half of the insertion order so every hot key lives in
// a sealed (mappable) segment.
func fillReadBench(b *testing.B, s *Store) []string {
	b.Helper()
	val := bytes.Repeat([]byte("v"), readBenchValSize)
	keys := make([]string, readBenchKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%06d", i)
		if err := s.Put(keys[i], val); err != nil {
			b.Fatal(err)
		}
	}
	hot := make([]string, readBenchHot)
	for i := range hot {
		hot[i] = keys[(i*readBenchKeys/2)/readBenchHot]
	}
	return hot
}

// BenchmarkReadPathHotGet measures repeat point reads of a small hot
// set at 8 goroutines. ReportMetric exports the cache hit ratio so the
// JSON artifact records how the fastest variant wins.
func BenchmarkReadPathHotGet(b *testing.B) {
	for _, v := range []struct {
		name string
		opts Options
	}{
		{"Pread", Options{MaxSegmentBytes: 128 << 10}},
		{"Mmap", Options{MaxSegmentBytes: 128 << 10, Mmap: true}},
		{"MmapCache", Options{MaxSegmentBytes: 128 << 10, Mmap: true, ReadCacheBytes: 8 << 20}},
	} {
		b.Run(v.name, func(b *testing.B) {
			s, err := Open(b.TempDir(), v.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			hot := fillReadBench(b, s)
			var next atomic.Int64
			b.SetParallelism(benchParallelism)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := hot[int(next.Add(1))%len(hot)]
					if _, err := s.Get(k); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			rs := s.ReadStats()
			if total := rs.CacheHits + rs.CacheMisses; total > 0 {
				b.ReportMetric(float64(rs.CacheHits)/float64(total), "hit-ratio")
			}
		})
	}
}

// BenchmarkReadPathUniformGet sweeps the whole key space uniformly —
// the cache-hostile shape — isolating what the mmap path alone buys
// when every read misses.
func BenchmarkReadPathUniformGet(b *testing.B) {
	for _, v := range []struct {
		name string
		opts Options
	}{
		{"Pread", Options{MaxSegmentBytes: 128 << 10}},
		{"Mmap", Options{MaxSegmentBytes: 128 << 10, Mmap: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			s, err := Open(b.TempDir(), v.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			fillReadBench(b, s)
			var next atomic.Int64
			b.SetParallelism(benchParallelism)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := fmt.Sprintf("key%06d", int(next.Add(1))%readBenchKeys)
					if _, err := s.Get(k); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
