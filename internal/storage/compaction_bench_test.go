package storage

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"
)

// BenchmarkCompactionGetP99 measures point-read tail latency in three
// regimes: a quiet store (idle), a store under write churn with no
// compactor (churn — the contention baseline), and the same churn with
// the background compactor continuously rewriting segments
// (compacting). The acceptance bar for incremental compaction is that
// reads stay available: p99 with the compactor on should sit within a
// small factor of the churn baseline, where the old stop-the-world
// Compact stalled every reader for the whole rewrite. Reported
// metrics: p50-ns/op and p99-ns/op alongside the usual mean. CI
// exports these to BENCH_compaction.json.
func BenchmarkCompactionGetP99(b *testing.B) {
	for _, mode := range []string{"idle", "churn", "compacting"} {
		b.Run(mode, func(b *testing.B) {
			dir := b.TempDir()
			opts := Options{MaxSegmentBytes: 256 << 10}
			compacting := mode == "compacting"
			churn := mode != "idle"
			if compacting {
				opts.CompactInterval = time.Millisecond
				opts.CompactGarbageRatio = 0.2
				opts.CompactionFloorBytes = 1
			}
			s, err := Open(dir, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()

			const keys = 2048
			val := []byte(strings.Repeat("v", 512))
			for i := 0; i < keys; i++ {
				if err := s.Put(fmt.Sprintf("bench/%05d", i), val); err != nil {
					b.Fatal(err)
				}
			}

			// Churn: a writer keeps superseding records so the
			// compactor always has victims above the garbage ratio.
			stop := make(chan struct{})
			done := make(chan struct{})
			if churn {
				go func() {
					defer close(done)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := fmt.Sprintf("bench/%05d", i%keys)
						if err := s.Put(k, val); err != nil {
							return
						}
					}
				}()
			} else {
				close(done)
			}

			lat := make([]time.Duration, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := fmt.Sprintf("bench/%05d", (i*31)%keys)
				t0 := time.Now()
				if _, err := s.Get(k); err != nil {
					b.Fatal(err)
				}
				lat[i] = time.Since(t0)
			}
			b.StopTimer()
			close(stop)
			<-done

			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			pct := func(p float64) float64 {
				idx := int(p * float64(len(lat)-1))
				return float64(lat[idx].Nanoseconds())
			}
			b.ReportMetric(pct(0.50), "p50-ns/op")
			b.ReportMetric(pct(0.99), "p99-ns/op")
			if compacting {
				cs := s.CompactionStats()
				b.ReportMetric(float64(cs.Runs), "compactions")
			}
		})
	}
}
