package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Background segment scrub. The CRC32C in every frame is otherwise
// only verified on the read path of a requested key, so latent
// corruption in a cold sealed segment — a bit flip on disk, a torn
// sector — goes undetected until a user request happens to land on
// it, and until then every compaction of that segment would fail. The
// scrubber is a paced goroutine (Options.ScrubInterval) that CRC-walks
// one sealed segment per tick, round-robin. A clean walk bumps the
// verify counters; a corrupt one quarantines the segment (compaction
// stops selecting it — its scan would fail) and triggers salvage: the
// key directory knows exactly which frames are live, so each is
// re-verified at its known offset and the intact ones are rewritten
// through the compaction machinery (staged outputs, manifest commit,
// keydir flip), tombstones rescued by a lenient walk, and the corrupt
// file retired. Frames that fail verification are lost: their keydir
// entries are dropped (counted in RecordsLost) rather than left
// dangling for readers to error on forever.

// scrubState is the scrubber's lifecycle and counters.
type scrubState struct {
	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
	// cursor is the last segment ID scrubbed; each tick verifies the
	// next sealed segment above it, wrapping at the top.
	cursor atomic.Uint64

	runs             atomic.Uint64
	segmentsVerified atomic.Uint64
	bytesVerified    atomic.Uint64
	corruptions      atomic.Uint64
	salvagedRecords  atomic.Uint64
	lostRecords      atomic.Uint64
	lastErr          atomic.Value // string
}

// ScrubStats reports background scrub activity.
type ScrubStats struct {
	// Running reports whether the scrub goroutine is alive.
	Running bool
	// Runs counts scrub passes (one verified segment each, plus any
	// salvage retries).
	Runs uint64
	// SegmentsVerified counts clean CRC walks; BytesVerified the bytes
	// they covered. A segment verified N times counts N.
	SegmentsVerified uint64
	BytesVerified    uint64
	// CorruptionsFound counts segments whose walk hit a CRC or framing
	// error and were quarantined.
	CorruptionsFound uint64
	// RecordsSalvaged counts live records rewritten intact out of
	// quarantined segments; RecordsLost counts live records whose
	// frames failed verification and whose keys were dropped.
	RecordsSalvaged uint64
	RecordsLost     uint64
	// LastError is the most recent scrub I/O or salvage failure, if
	// any (corruption detections are not errors — they are the job).
	LastError string
}

// ScrubStats returns a snapshot of scrub activity.
func (s *Store) ScrubStats() ScrubStats {
	s.scrub.mu.Lock()
	running := s.scrub.stop != nil
	s.scrub.mu.Unlock()
	st := ScrubStats{
		Running:          running,
		Runs:             s.scrub.runs.Load(),
		SegmentsVerified: s.scrub.segmentsVerified.Load(),
		BytesVerified:    s.scrub.bytesVerified.Load(),
		CorruptionsFound: s.scrub.corruptions.Load(),
		RecordsSalvaged:  s.scrub.salvagedRecords.Load(),
		RecordsLost:      s.scrub.lostRecords.Load(),
	}
	if e, ok := s.scrub.lastErr.Load().(string); ok {
		st.LastError = e
	}
	return st
}

// startScrubber launches the background scrub loop. No-op if running.
func (s *Store) startScrubber(interval time.Duration) {
	s.scrub.mu.Lock()
	defer s.scrub.mu.Unlock()
	if s.scrub.stop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.scrub.stop, s.scrub.done = stop, done
	go s.scrubLoop(interval, stop, done)
}

// stopScrubber signals the loop and waits for any in-flight walk.
func (s *Store) stopScrubber() {
	s.scrub.mu.Lock()
	stop, done := s.scrub.stop, s.scrub.done
	s.scrub.stop, s.scrub.done = nil, nil
	s.scrub.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// scrubLoop is the scrub goroutine body: one segment per tick keeps
// the I/O and CPU cost paced instead of bursty.
func (s *Store) scrubLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if s.closed.Load() {
				return
			}
			s.scrubPass(false)
		}
	}
}

// Scrub runs one synchronous full pass: every sealed segment is
// CRC-walked and any quarantined segment gets a salvage attempt.
// Corruption is not an error (detection and quarantine are the
// scrubber's job); I/O failures during walks or salvage are.
func (s *Store) Scrub() error {
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	if s.closed.Load() {
		return ErrClosed
	}
	return s.scrubPass(true)
}

// scrubPass verifies the next sealed segment (or, with all, every one)
// and retries salvage of anything quarantined.
func (s *Store) scrubPass(all bool) error {
	s.scrub.runs.Add(1)
	var firstErr error
	record := func(err error) {
		s.scrub.lastErr.Store(err.Error())
		if firstErr == nil {
			firstErr = err
		}
	}

	// Salvage retries first: a segment quarantined on an earlier pass
	// (or whose salvage failed mid-disk-fault) gets another chance as
	// soon as conditions allow.
	for _, seg := range s.quarantinedSegments() {
		if err := s.salvageSegment(seg); err != nil {
			record(err)
		}
		seg.release()
	}

	for _, seg := range s.scrubTargets(all) {
		n, err := s.verifySegment(seg)
		switch {
		case err == nil:
			seg.scrubs.Add(1)
			s.scrub.segmentsVerified.Add(1)
			s.scrub.bytesVerified.Add(uint64(n))
		case errors.Is(err, ErrCorrupt):
			s.scrub.corruptions.Add(1)
			seg.quarantined.Store(true)
			if serr := s.salvageSegment(seg); serr != nil {
				record(serr)
			}
		default:
			record(fmt.Errorf("storage: scrubbing segment %d: %w", seg.id, err))
		}
		seg.release()
	}
	if firstErr == nil {
		s.scrub.lastErr.Store("")
	}
	return firstErr
}

// scrubTargets returns the pinned segments to verify this pass: every
// sealed, non-quarantined, non-empty segment (all), or the next one
// past the round-robin cursor. Caller releases each.
func (s *Store) scrubTargets(all bool) []*segment {
	s.segMu.RLock()
	candidates := make([]*segment, 0, len(s.segments))
	for _, seg := range s.segments {
		if seg == s.active || seg.size == 0 || seg.quarantined.Load() {
			continue
		}
		candidates = append(candidates, seg)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].id < candidates[j].id })
	if !all && len(candidates) > 0 {
		cur := s.scrub.cursor.Load()
		next := candidates[0] // wrap-around default
		for _, seg := range candidates {
			if seg.id > cur {
				next = seg
				break
			}
		}
		candidates = candidates[:0]
		candidates = append(candidates, next)
		s.scrub.cursor.Store(next.id)
	}
	for _, seg := range candidates {
		seg.acquire()
	}
	s.segMu.RUnlock()
	return candidates
}

// quarantinedSegments returns the pinned quarantined segments still
// registered. Caller releases each.
func (s *Store) quarantinedSegments() []*segment {
	s.segMu.RLock()
	var out []*segment
	for _, seg := range s.segments {
		if seg.quarantined.Load() && seg != s.active {
			seg.acquire()
			out = append(out, seg)
		}
	}
	s.segMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// verifySegment CRC-walks one sealed segment end to end, returning the
// bytes covered. The walk prefers the segment's read-only mapping —
// zero syscalls, pure page-cache streaming — and falls back to pread
// for unmapped segments. The caller holds a pin, so neither the
// descriptor nor the mapping can retire mid-walk.
func (s *Store) verifySegment(seg *segment) (int64, error) {
	var rr *recordReader
	if m := seg.mapped(); m != nil && int64(len(m)) >= seg.size {
		rr = newRecordReader(bytes.NewReader(m[:seg.size]))
	} else {
		rr = newRecordReader(io.NewSectionReader(seg.f, 0, seg.size))
	}
	for {
		_, err := rr.next()
		if err == io.EOF {
			return seg.size, nil
		}
		if err != nil {
			return rr.offset(), err
		}
	}
}

// salvageSegment rewrites what it can out of a quarantined segment and
// retires it. The key directory drives the plan: each live entry's
// frame is re-verified at its known offset and intact ones are copied
// through rewritePlan (staged outputs, manifest commit, rename, keydir
// flip, victim retire — the compaction phases); corrupt ones lose
// their keydir entry. Tombstones are rescued by a lenient walk that
// resynchronizes at the next known-live offset past a corrupt region,
// and survive under the same rules compaction uses. On success the
// corrupt file is gone from disk and directory alike; on failure the
// segment stays quarantined for the next pass to retry.
func (s *Store) salvageSegment(seg *segment) error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if s.compactor.wedged.Load() {
		return ErrCompactorWedged
	}
	if s.closed.Load() {
		return ErrClosed
	}
	// Salvage writes staged outputs and a manifest; while the write
	// path is degraded those writes would hit the same failing disk.
	if err := s.writeGate(); err != nil {
		return err
	}
	// Re-check registration under compactMu: an earlier pass (or a
	// concurrent explicit Scrub) may have salvaged it already.
	s.segMu.RLock()
	registered := s.segments[seg.id] == seg
	s.segMu.RUnlock()
	if !registered {
		return nil
	}

	// Live entries pointing into this segment, via one consistent
	// directory sweep.
	type liveRef struct {
		key string
		loc keyLoc
	}
	var live []liveRef
	s.rlockAll()
	for i := range s.shards {
		for k, loc := range s.shards[i].m {
			if loc.segID == seg.id {
				live = append(live, liveRef{key: k, loc: loc})
			}
		}
	}
	s.runlockAll()
	sort.Slice(live, func(i, j int) bool { return live[i].loc.offset < live[j].loc.offset })

	// Verify each live frame in place. Intact ones are salvage
	// candidates; corrupt ones are lost — their keydir entries are
	// removed now, before the segment retires, so a reader can never
	// chase a dangling entry into a missing segment.
	victimIDs := map[uint64]bool{seg.id: true}
	plan := make([]copyPlan, 0, len(live))
	liveOffsets := make([]int64, 0, len(live))
	lost := 0
	frame := make([]byte, 0, 4096)
	for _, lr := range live {
		if int64(cap(frame)) < lr.loc.length {
			frame = make([]byte, lr.loc.length)
		}
		frame = frame[:lr.loc.length]
		_, rerr := seg.f.ReadAt(frame, lr.loc.offset)
		var derr error
		if rerr == nil {
			_, derr = decodeFramedValue(frame, lr.key)
		}
		if rerr != nil || derr != nil {
			sh := s.shardFor(lr.key)
			sh.mu.Lock()
			if cur, ok := sh.m[lr.key]; ok && cur.segID == seg.id && cur.offset == lr.loc.offset {
				delete(sh.m, lr.key)
				if s.cache != nil {
					s.cache.invalidate(lr.key)
				}
				lost++
			}
			sh.mu.Unlock()
			continue
		}
		liveOffsets = append(liveOffsets, lr.loc.offset)
		plan = append(plan, copyPlan{key: lr.key, src: victimRec{
			seg: seg, off: lr.loc.offset, length: lr.loc.length, valLen: lr.loc.valLen,
		}})
	}

	// Tombstone rescue: records between live frames may include
	// tombstones that still suppress older versions in earlier-ordered
	// segments; dropping them would resurrect deleted keys at the next
	// replay. Walk leniently, resynchronizing at the next verified live
	// offset after a corrupt region, and keep tombstones under the
	// compaction survival rules.
	minSurvivor := s.minSurvivingOrder(victimIDs)
	for _, ts := range s.rescueTombstones(seg, liveOffsets) {
		if s.shardFor(ts.key).has(ts.key) {
			continue // a later put made it moot
		}
		if minSurvivor == nil || !orderBefore(minSurvivor, seg) {
			continue // nothing older survives for it to suppress
		}
		plan = append(plan, copyPlan{key: ts.key, src: victimRec{
			seg: seg, off: ts.off, length: ts.length, tombstone: true,
		}})
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].src.off < plan[j].src.off })

	if err := s.rewritePlan([]*segment{seg}, victimIDs, plan, seg.rank); err != nil {
		return fmt.Errorf("storage: salvaging segment %d: %w", seg.id, err)
	}
	salvaged := 0
	for _, p := range plan {
		if !p.src.tombstone {
			salvaged++
		}
	}
	s.scrub.salvagedRecords.Add(uint64(salvaged))
	s.scrub.lostRecords.Add(uint64(lost))
	return nil
}

// rescuedTombstone is one tombstone frame recovered from a quarantined
// segment.
type rescuedTombstone struct {
	key    string
	off    int64
	length int64
}

// rescueTombstones walks seg leniently: frames decode sequentially
// until corruption, then the walk resynchronizes at the next verified
// live-record offset past the damage (frames between are
// unrecoverable — without a trustworthy length there is no safe way to
// find the next frame boundary). Later duplicates win, as in replay.
func (s *Store) rescueTombstones(seg *segment, liveOffsets []int64) []rescuedTombstone {
	var rd io.ReaderAt = seg.f
	if m := seg.mapped(); m != nil && int64(len(m)) >= seg.size {
		rd = bytes.NewReader(m[:seg.size])
	}
	lastByKey := make(map[string]rescuedTombstone)
	base := int64(0)
	for base < seg.size {
		rr := newRecordReader(io.NewSectionReader(rd, base, seg.size-base))
		for {
			off := base + rr.offset()
			rec, err := rr.next()
			if err == io.EOF {
				return tombstoneList(lastByKey)
			}
			if err != nil {
				// Resync past the corruption at the next live offset.
				next := int64(-1)
				for _, lo := range liveOffsets {
					if lo > off {
						next = lo
						break
					}
				}
				if next < 0 {
					return tombstoneList(lastByKey)
				}
				base = next
				break
			}
			if rec.tombstone {
				key := string(rec.key)
				lastByKey[key] = rescuedTombstone{key: key, off: off, length: base + rr.offset() - off}
			} else {
				// A later put in the same segment supersedes a rescued
				// tombstone, exactly as replay order would.
				delete(lastByKey, string(rec.key))
			}
		}
	}
	return tombstoneList(lastByKey)
}

// tombstoneList flattens the per-key survivors.
func tombstoneList(m map[string]rescuedTombstone) []rescuedTombstone {
	out := make([]rescuedTombstone, 0, len(m))
	for _, ts := range m {
		out = append(out, ts)
	}
	return out
}
