package storage

import (
	"encoding/json"
	"errors"
	"fmt"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// Snapshot layout. The corpus is stored one key per recipe plus two
// metadata keys, so tools can read, patch or delete individual recipes
// without rewriting the corpus. The per-recipe wire format and key
// scheme live in recipedb (shared with its write-through mutation
// path); this file layers the whole-corpus save/load protocol on top.
const (
	formatKey     = "meta/format"
	flavorCfgKey  = "meta/flavor-config"
	recipePrefix  = recipedb.RecipePrefix
	formatVersion = "culinarydb-snapshot/1"
)

// ErrSnapshot wraps snapshot encoding/decoding failures.
var ErrSnapshot = errors.New("storage: bad snapshot")

// recipeKey renders the key for one recipe ID.
func recipeKey(id int) string { return recipedb.RecipeKey(id) }

// encodeRecipe serializes one recipe (see recipedb.EncodeRecipe).
func encodeRecipe(r *recipedb.Recipe) []byte { return recipedb.EncodeRecipe(r) }

// decodeRecipe parses an encoded recipe body, wrapping failures in
// ErrSnapshot.
func decodeRecipe(data []byte) (name string, region recipedb.Region, source recipedb.Source, ids []flavor.ID, err error) {
	name, region, source, ids, err = recipedb.DecodeRecipe(data)
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	return name, region, source, ids, nil
}

// SaveCorpus writes the full recipe corpus and the catalog configuration
// into db, replacing any prior snapshot.
func SaveCorpus(db *Store, corpus *recipedb.Store) error {
	cfg, err := json.Marshal(corpus.Catalog().Config())
	if err != nil {
		return fmt.Errorf("storage: marshaling flavor config: %w", err)
	}
	if err := db.Put(formatKey, []byte(formatVersion)); err != nil {
		return err
	}
	if err := db.Put(flavorCfgKey, cfg); err != nil {
		return err
	}
	// Drop recipes from any previous, larger snapshot, plus keys whose
	// slot the corpus has since tombstoned.
	for _, key := range db.KeysWithPrefix(recipePrefix) {
		var id int
		if _, err := fmt.Sscanf(key, recipePrefix+"%d", &id); err == nil &&
			id < corpus.Slots() && !corpus.Recipe(id).Deleted {
			continue
		}
		if err := db.Delete(key); err != nil {
			return err
		}
	}
	for i := 0; i < corpus.Slots(); i++ {
		r := corpus.Recipe(i)
		if r.Deleted {
			continue
		}
		if err := db.Put(recipeKey(i), encodeRecipe(&r)); err != nil {
			return fmt.Errorf("storage: saving recipe %d: %w", i, err)
		}
	}
	return db.Sync()
}

// LoadCatalogConfig reads back the flavor configuration a snapshot was
// built against, so callers can rebuild the identical catalog.
func LoadCatalogConfig(db *Store) (flavor.Config, error) {
	raw, err := db.Get(flavorCfgKey)
	if err != nil {
		return flavor.Config{}, fmt.Errorf("storage: snapshot has no flavor config: %w", err)
	}
	var cfg flavor.Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return flavor.Config{}, fmt.Errorf("%w: flavor config: %v", ErrSnapshot, err)
	}
	return cfg, nil
}

// LoadCorpus reads a snapshot back into an in-memory recipe store bound
// to catalog. The catalog must have been built with the same
// configuration the snapshot records (checked), because ingredient IDs
// are dense catalog indices.
func LoadCorpus(db *Store, catalog *flavor.Catalog) (*recipedb.Store, error) {
	format, err := db.Get(formatKey)
	if err != nil {
		return nil, fmt.Errorf("storage: not a corpus snapshot: %w", err)
	}
	if string(format) != formatVersion {
		return nil, fmt.Errorf("%w: format %q, want %q", ErrSnapshot, format, formatVersion)
	}
	cfg, err := LoadCatalogConfig(db)
	if err != nil {
		return nil, err
	}
	if cfg != catalog.Config() {
		return nil, fmt.Errorf("%w: snapshot catalog config differs from supplied catalog", ErrSnapshot)
	}
	corpus := recipedb.NewStore(catalog)
	keys := db.KeysWithPrefix(recipePrefix)
	for _, key := range keys { // sorted, so IDs load in ascending order
		var id int
		if _, err := fmt.Sscanf(key, recipePrefix+"%d", &id); err != nil {
			return nil, fmt.Errorf("%w: recipe key %q", ErrSnapshot, key)
		}
		raw, err := db.Get(key)
		if err != nil {
			return nil, err
		}
		name, region, source, ids, err := decodeRecipe(raw)
		if err != nil {
			return nil, fmt.Errorf("storage: recipe %s: %w", key, err)
		}
		// Upsert with the explicit ID tombstones any gap left by
		// deleted recipes, so reloaded IDs match the saved corpus.
		if _, _, _, err := corpus.Upsert(id, name, region, source, ids); err != nil {
			return nil, fmt.Errorf("storage: recipe %s: %w", key, err)
		}
	}
	return corpus, nil
}
