package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// Snapshot layout. The corpus is stored one key per recipe plus two
// metadata keys, so tools can read, patch or delete individual recipes
// without rewriting the corpus.
const (
	formatKey     = "meta/format"
	flavorCfgKey  = "meta/flavor-config"
	recipePrefix  = "recipe/"
	formatVersion = "culinarydb-snapshot/1"
)

// ErrSnapshot wraps snapshot encoding/decoding failures.
var ErrSnapshot = errors.New("storage: bad snapshot")

// recipeKey renders the key for one recipe ID.
func recipeKey(id int) string { return fmt.Sprintf("%s%08d", recipePrefix, id) }

// encodeRecipe serializes one recipe:
//
//	region  uvarint
//	source  uvarint
//	name    uvarint length + bytes
//	nIngr   uvarint
//	ids     nIngr plain uvarints, original order preserved
func encodeRecipe(r *recipedb.Recipe) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putUvarint(uint64(r.Region))
	putUvarint(uint64(r.Source))
	putUvarint(uint64(len(r.Name)))
	buf = append(buf, r.Name...)
	putUvarint(uint64(len(r.Ingredients)))
	for _, id := range r.Ingredients {
		putUvarint(uint64(id))
	}
	return buf
}

// decodeRecipe parses an encoded recipe body.
func decodeRecipe(data []byte) (name string, region recipedb.Region, source recipedb.Source, ids []flavor.ID, err error) {
	r := bytes.NewReader(data)
	read := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = binary.ReadUvarint(r)
		return v
	}
	region = recipedb.Region(read())
	source = recipedb.Source(read())
	nameLen := read()
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if nameLen > uint64(r.Len()) {
		return "", 0, 0, nil, fmt.Errorf("%w: name length %d exceeds remaining %d", ErrSnapshot, nameLen, r.Len())
	}
	nameBuf := make([]byte, nameLen)
	if _, rerr := r.Read(nameBuf); rerr != nil {
		return "", 0, 0, nil, fmt.Errorf("%w: %v", ErrSnapshot, rerr)
	}
	name = string(nameBuf)
	n := read()
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if n > uint64(r.Len()) { // each ID takes >= 1 byte
		return "", 0, 0, nil, fmt.Errorf("%w: ingredient count %d exceeds remaining bytes", ErrSnapshot, n)
	}
	ids = make([]flavor.ID, n)
	for i := range ids {
		ids[i] = flavor.ID(read())
	}
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if r.Len() != 0 {
		return "", 0, 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshot, r.Len())
	}
	return name, region, source, ids, nil
}

// SaveCorpus writes the full recipe corpus and the catalog configuration
// into db, replacing any prior snapshot.
func SaveCorpus(db *Store, corpus *recipedb.Store) error {
	cfg, err := json.Marshal(corpus.Catalog().Config())
	if err != nil {
		return fmt.Errorf("storage: marshaling flavor config: %w", err)
	}
	if err := db.Put(formatKey, []byte(formatVersion)); err != nil {
		return err
	}
	if err := db.Put(flavorCfgKey, cfg); err != nil {
		return err
	}
	// Drop recipes from any previous, larger snapshot.
	for _, key := range db.KeysWithPrefix(recipePrefix) {
		var id int
		if _, err := fmt.Sscanf(key, recipePrefix+"%d", &id); err == nil && id < corpus.Len() {
			continue
		}
		if err := db.Delete(key); err != nil {
			return err
		}
	}
	for i := 0; i < corpus.Len(); i++ {
		r := corpus.Recipe(i)
		if err := db.Put(recipeKey(i), encodeRecipe(r)); err != nil {
			return fmt.Errorf("storage: saving recipe %d: %w", i, err)
		}
	}
	return db.Sync()
}

// LoadCatalogConfig reads back the flavor configuration a snapshot was
// built against, so callers can rebuild the identical catalog.
func LoadCatalogConfig(db *Store) (flavor.Config, error) {
	raw, err := db.Get(flavorCfgKey)
	if err != nil {
		return flavor.Config{}, fmt.Errorf("storage: snapshot has no flavor config: %w", err)
	}
	var cfg flavor.Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return flavor.Config{}, fmt.Errorf("%w: flavor config: %v", ErrSnapshot, err)
	}
	return cfg, nil
}

// LoadCorpus reads a snapshot back into an in-memory recipe store bound
// to catalog. The catalog must have been built with the same
// configuration the snapshot records (checked), because ingredient IDs
// are dense catalog indices.
func LoadCorpus(db *Store, catalog *flavor.Catalog) (*recipedb.Store, error) {
	format, err := db.Get(formatKey)
	if err != nil {
		return nil, fmt.Errorf("storage: not a corpus snapshot: %w", err)
	}
	if string(format) != formatVersion {
		return nil, fmt.Errorf("%w: format %q, want %q", ErrSnapshot, format, formatVersion)
	}
	cfg, err := LoadCatalogConfig(db)
	if err != nil {
		return nil, err
	}
	if cfg != catalog.Config() {
		return nil, fmt.Errorf("%w: snapshot catalog config differs from supplied catalog", ErrSnapshot)
	}
	corpus := recipedb.NewStore(catalog)
	keys := db.KeysWithPrefix(recipePrefix)
	for _, key := range keys { // sorted, so IDs load in order
		raw, err := db.Get(key)
		if err != nil {
			return nil, err
		}
		name, region, source, ids, err := decodeRecipe(raw)
		if err != nil {
			return nil, fmt.Errorf("storage: recipe %s: %w", key, err)
		}
		if _, err := corpus.Add(name, region, source, ids); err != nil {
			return nil, fmt.Errorf("storage: recipe %s: %w", key, err)
		}
	}
	return corpus, nil
}
