//go:build !unix

package storage

import (
	"errors"
	"os"
)

// mmapSupported gates tests that assert mapped reads actually happen.
const mmapSupported = false

// errMmapUnsupported makes mapSegment silently keep the pread path on
// platforms without mmap.
var errMmapUnsupported = errors.New("storage: mmap unsupported on this platform")

func mmapFile(f *os.File, size int64) ([]byte, error) { return nil, errMmapUnsupported }

func munmapFile(b []byte) error { return nil }
