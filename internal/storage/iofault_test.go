package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Runtime I/O fault matrix. Unlike the crash harness (fault_test.go),
// where the process dies at the fault, these tests inject exactly one
// failing filesystem operation into a live store and assert the
// degradation contract:
//
//   - every acknowledged write stays readable, in process and across
//     reopen;
//   - no failed write's value is ever served to a reader in process;
//   - after a failed fsync the store never silently retries it — Sync
//     fails until TryRecoverWrites rotates to a fresh segment;
//   - reopen reconciles file bytes against the keydir: unacknowledged
//     bytes are either trimmed or consistently replayed, never served
//     half-visible.

var errInjectedIO = errors.New("injected io error")

// ioOp records one operation of the canonical fault sequence along
// with the error the caller observed.
type ioOp struct {
	kind string // "put", "del", "compact", "sync"
	key  string
	val  string
	err  error
}

// runFaultSequence drives the canonical write/rotate/compact/manifest
// sequence. MaxSegmentBytes is small enough that the puts rotate
// several times, the deletes create garbage, and Compact rewrites
// through the fs seam (staging, manifest, renames, unlinks, dir
// fsyncs). Every mutation's error is recorded; once a fault lands,
// later mutations fail fast with ErrWriteWedged, which is part of the
// contract under test.
func runFaultSequence(s *Store) []ioOp {
	var ops []ioOp
	val := func(i, gen int) string {
		return fmt.Sprintf("value-%02d-gen%d-%s", i, gen, strings.Repeat("x", 120))
	}
	for gen := 0; gen < 2; gen++ {
		for i := 0; i < 12; i++ {
			k := fmt.Sprintf("key-%02d", i)
			v := val(i, gen)
			ops = append(ops, ioOp{"put", k, v, s.Put(k, []byte(v))})
		}
	}
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("key-%02d", i)
		ops = append(ops, ioOp{"del", k, "", s.Delete(k)})
	}
	ops = append(ops, ioOp{"compact", "", "", s.Compact()})
	for i := 6; i < 12; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v := val(i, 2)
		ops = append(ops, ioOp{"put", k, v, s.Put(k, []byte(v))})
	}
	ops = append(ops, ioOp{"sync", "", "", s.Sync()})
	return ops
}

// ackedState folds the acknowledged mutations into the state the
// caller was promised: key -> value for live keys.
func ackedState(ops []ioOp) map[string]string {
	state := make(map[string]string)
	for _, op := range ops {
		if op.err != nil {
			continue
		}
		switch op.kind {
		case "put":
			state[op.key] = op.val
		case "del":
			delete(state, op.key)
		}
	}
	return state
}

// sequenceKeys is every key the canonical sequence touches.
func sequenceKeys() []string {
	keys := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		keys = append(keys, fmt.Sprintf("key-%02d", i))
	}
	return keys
}

// verifyAcked asserts the store serves exactly the acknowledged state:
// acked values readable and correct, everything else absent. Readers
// must keep working while the write path is degraded, so this runs
// before recovery.
func verifyAcked(t *testing.T, s *Store, expected map[string]string, when string) {
	t.Helper()
	for _, k := range sequenceKeys() {
		got, err := s.Get(k)
		want, live := expected[k]
		switch {
		case live && err != nil:
			t.Fatalf("%s: Get(%q) = error %v, want acked value", when, k, err)
		case live && string(got) != want:
			t.Fatalf("%s: Get(%q) = %q, want acked %q", when, k, got, want)
		case !live && !errors.Is(err, ErrNotFound):
			t.Fatalf("%s: Get(%q) = (%q, %v), want ErrNotFound — a failed or deleted write is visible", when, k, got, err)
		}
	}
}

// verifyReopened asserts the reopened store's state is explainable:
// for each key, either the acknowledged state, or — only for the
// single operation that failed at the disk (not gated by
// ErrWriteWedged, so its bytes may have reached the file) — the state
// that operation would have produced. Unacknowledged bytes replaying
// consistently is allowed; anything else is corruption or data loss.
func verifyReopened(t *testing.T, s *Store, ops []ioOp, extra map[string]string) {
	t.Helper()
	acked := ackedState(ops)
	for k, v := range extra {
		acked[k] = v
	}
	// The one mutation whose bytes may have hit the file before the
	// error: the first failure not short-circuited by the write gate.
	resurrect := make(map[string]ioOp)
	for _, op := range ops {
		if op.err == nil || errors.Is(op.err, ErrWriteWedged) {
			continue
		}
		if op.kind == "put" || op.kind == "del" {
			resurrect[op.key] = op
		}
	}
	keys := sequenceKeys()
	for k := range extra {
		keys = append(keys, k)
	}
	for _, k := range keys {
		got, err := s.Get(k)
		want, live := acked[k]
		if err == nil && live && string(got) == want {
			continue // acked state
		}
		if r, ok := resurrect[k]; ok {
			if r.kind == "put" && err == nil && string(got) == r.val {
				continue // failed put's bytes replayed consistently
			}
			if r.kind == "del" && errors.Is(err, ErrNotFound) {
				continue // failed delete's tombstone replayed consistently
			}
		}
		if !live && errors.Is(err, ErrNotFound) {
			continue
		}
		t.Fatalf("reopen: Get(%q) = (%q, %v), want acked %q (live=%v) or the failed op's result", k, got, err, want, live)
	}
}

// matrixPoint runs the canonical sequence against a store whose nth
// filesystem operation fails, then checks the full contract: degraded
// reads, recovery, post-recovery writes, clean close, and reopen
// reconciliation.
func matrixPoint(t *testing.T, n int, injErr error, short bool) (degraded bool) {
	t.Helper()
	dir := t.TempDir()
	inj := NewErrInjector()
	s, err := Open(dir, Options{
		MaxSegmentBytes: 1 << 10,
		SyncEveryPut:    true,
		FaultInjection:  inj,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	inj.FailOp(n, injErr, short)
	ops := runFaultSequence(s)
	if inj.Injected() == 0 {
		t.Fatalf("fault point %d never fired", n)
	}
	expected := ackedState(ops)

	// Readers serve the acknowledged state even while degraded.
	verifyAcked(t, s, expected, "in-process")

	inj.Clear()
	extra := map[string]string{}
	if s.Health() != HealthHealthy {
		degraded = true
		// The fault is gone, but a degraded store must not silently
		// resume — in particular it must never re-fsync a file whose
		// fsync failed (the kernel may have dropped the dirty pages).
		if err := s.Sync(); err == nil {
			t.Fatalf("Sync succeeded while degraded: a failed fsync was silently retried")
		}
		if err := s.Put("gated", []byte("x")); !errors.Is(err, ErrWriteWedged) {
			t.Fatalf("degraded Put error = %v, want ErrWriteWedged", err)
		}
		if err := s.TryRecoverWrites(); err != nil {
			t.Fatalf("TryRecoverWrites after clearing fault: %v", err)
		}
		if got := s.Health(); got != HealthHealthy {
			t.Fatalf("Health after recovery = %v, want healthy", got)
		}
	}
	// Post-recovery (or never-degraded) writes must work and be durable.
	extra["post/recovery"] = "back-in-business"
	if err := s.Put("post/recovery", []byte(extra["post/recovery"])); err != nil {
		t.Fatalf("post-recovery Put: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("post-recovery Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	verifyReopened(t, s2, ops, extra)
	return degraded
}

// TestIOFaultMatrix sweeps one injected error over every filesystem
// operation in the write/rotate/compact/manifest sequence. A dry run
// with an unreachable fault point counts the operations; each matrix
// point then replays the identical (deterministic) sequence with
// exactly that operation failing.
func TestIOFaultMatrix(t *testing.T) {
	dir := t.TempDir()
	inj := NewErrInjector()
	s, err := Open(dir, Options{
		MaxSegmentBytes: 1 << 10,
		SyncEveryPut:    true,
		FaultInjection:  inj,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	inj.FailOp(1<<30, nil, false) // unreachable: count only
	for _, op := range runFaultSequence(s) {
		if op.err != nil {
			t.Fatalf("dry run: %s %q failed: %v", op.kind, op.key, op.err)
		}
	}
	total := inj.Ops()
	s.Close()
	if total < 20 {
		t.Fatalf("dry run counted only %d fs operations; sequence too small for a meaningful matrix", total)
	}

	sweeps := []struct {
		name  string
		err   error
		short bool
	}{
		{"eio", errInjectedIO, false},
		{"enospc-torn", syscall.ENOSPC, true},
	}
	counters := struct {
		Points     int `json:"points"`
		Degraded   int `json:"degraded"`
		Recovered  int `json:"recovered"`
		Reopened   int `json:"reopened"`
		FsOpsSwept int `json:"fs_ops_swept"`
	}{FsOpsSwept: total}
	for _, sw := range sweeps {
		t.Run(sw.name, func(t *testing.T) {
			for n := 0; n < total; n++ {
				n := n
				t.Run(fmt.Sprintf("op%03d", n), func(t *testing.T) {
					degraded := matrixPoint(t, n, sw.err, sw.short)
					counters.Points++
					counters.Reopened++
					if degraded {
						counters.Degraded++
						counters.Recovered++
					}
				})
			}
		})
	}
	if out := os.Getenv("FAULT_MATRIX_OUT"); out != "" && !t.Failed() {
		b, _ := json.MarshalIndent(counters, "", "  ")
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Logf("writing fault matrix artifact: %v", err)
		}
	}
}

// TestFailedFsyncNeverRetried pins the fsyncgate rule in isolation:
// after an fsync fails, the store must not fsync that file again —
// not via Sync, not via rotation, not at Close. Durability comes back
// only through a fresh segment.
func TestFailedFsyncNeverRetried(t *testing.T) {
	dir := t.TempDir()
	inj := NewErrInjector()
	s, err := Open(dir, Options{SyncEveryPut: true, FaultInjection: inj})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if err := s.Put("durable", []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	inj.Arm(errInjectedIO, FaultSync)
	if err := s.Put("victim", []byte("v2")); err == nil {
		t.Fatal("Put with failing fsync succeeded")
	}
	if got := s.Health(); got != HealthReadOnly {
		t.Fatalf("Health = %v, want readOnly", got)
	}
	poisoned := s.active
	if !poisoned.syncFailed.Load() {
		t.Fatal("active segment not marked syncFailed")
	}
	inj.Clear()

	// The poisoned file's fsync must not be retried even though the
	// fault is gone: recovery rotates away from it instead.
	if err := s.TryRecoverWrites(); err != nil {
		t.Fatalf("TryRecoverWrites: %v", err)
	}
	if s.active == poisoned {
		t.Fatal("recovery kept the poisoned segment active instead of rotating")
	}
	if !poisoned.syncFailed.Load() {
		t.Fatal("recovery cleared syncFailed: the file could be fsynced again")
	}
	// Durability is live again on the fresh segment.
	if err := s.Put("victim", []byte("v3")); err != nil {
		t.Fatalf("post-recovery Put: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("post-recovery Sync: %v", err)
	}
}

// TestDegradedServesReadsAndAutoRecovers is the ENOSPC soak in
// miniature: a persistently full disk degrades mutations to typed
// errors while reads keep serving, and the background probe restores
// the write path once space comes back — no operator action.
func TestDegradedServesReadsAndAutoRecovers(t *testing.T) {
	dir := t.TempDir()
	inj := NewErrInjector()
	s, err := Open(dir, Options{
		SyncEveryPut:       true,
		FaultInjection:     inj,
		WriteProbeInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("seed-%d", i)
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatalf("seed Put: %v", err)
		}
	}

	inj.Arm(syscall.ENOSPC, FaultCreate, FaultWrite, FaultSync)
	if err := s.Put("full", []byte("x")); err == nil {
		t.Fatal("Put on full disk succeeded")
	}
	if got := s.Health(); got != HealthReadOnly {
		t.Fatalf("Health = %v, want readOnly", got)
	}
	// Mutations fail typed; the probe keeps retrying against the armed
	// fault and must not flap the store healthy.
	time.Sleep(20 * time.Millisecond)
	if err := s.Put("still-full", []byte("x")); !errors.Is(err, ErrWriteWedged) {
		t.Fatalf("degraded Put error = %v, want ErrWriteWedged", err)
	}
	// Reads serve throughout.
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("seed-%d", i)
		if v, err := s.Get(k); err != nil || string(v) != k {
			t.Fatalf("degraded Get(%q) = (%q, %v)", k, v, err)
		}
	}

	inj.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for s.Health() != HealthHealthy {
		if time.Now().After(deadline) {
			t.Fatal("write probe did not restore the store after the fault cleared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Put("resumed", []byte("y")); err != nil {
		t.Fatalf("Put after auto-recovery: %v", err)
	}
	st := s.HealthStats()
	if st.Degradations == 0 || st.Recoveries == 0 {
		t.Fatalf("HealthStats = %+v, want degradations and recoveries counted", st)
	}
}

// TestRecoverySalvagesAckedUnsyncedTail covers the !SyncEveryPut
// window: records acknowledged but not yet fsynced live only in the
// poisoned segment's unsynced tail. Recovery must copy them to the
// fresh segment before truncating, or acknowledged writes would be
// lost.
func TestRecoverySalvagesAckedUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	inj := NewErrInjector()
	s, err := Open(dir, Options{FaultInjection: inj}) // SyncEveryPut off
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	// Acked but unsynced: no rotation, no Sync call.
	want := make(map[string]string)
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("tail-%d", i)
		v := fmt.Sprintf("unsynced-value-%d", i)
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		want[k] = v
	}
	if err := s.Delete("tail-0"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	delete(want, "tail-0")

	inj.Arm(errInjectedIO, FaultWrite)
	if err := s.Put("boom", []byte("x")); err == nil {
		t.Fatal("Put with failing write succeeded")
	}
	inj.Clear()
	if err := s.TryRecoverWrites(); err != nil {
		t.Fatalf("TryRecoverWrites: %v", err)
	}
	if s.HealthStats().SalvagedRecords == 0 {
		t.Fatal("recovery salvaged no records; the acked unsynced tail was dropped")
	}
	for k, v := range want {
		if got, err := s.Get(k); err != nil || string(got) != v {
			t.Fatalf("post-salvage Get(%q) = (%q, %v), want %q", k, got, err, v)
		}
	}
	if _, err := s.Get("tail-0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-salvage Get(tail-0) err = %v, want ErrNotFound (tombstone lost in salvage)", err)
	}
	// The salvaged copies are now durable: survive a clean close/reopen.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	for k, v := range want {
		if got, err := s2.Get(k); err != nil || string(got) != v {
			t.Fatalf("reopened Get(%q) = (%q, %v), want %q", k, got, err, v)
		}
	}
	if _, err := s2.Get("tail-0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("reopened Get(tail-0) err = %v, want ErrNotFound", err)
	}
}
