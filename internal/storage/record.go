// Package storage is an embedded, log-structured key-value store used to
// persist the CulinaryDB corpus and derived artifacts on disk. The paper
// publishes its datasets as an online database
// (http://cosylab.iiitd.edu.in/culinarydb); this package is the durable
// substrate behind our equivalent: append-only data segments with CRC32C
// framing, a sharded in-memory key directory, group-commit batched
// appends (fdatasync into preallocated segments on linux), an mmap
// read path with a hot-key value cache, parallel segment replay at
// Open, tail-truncation crash recovery and background incremental
// compaction with a crash-safe manifest, in the style of bitcask. See
// README.md for the shard layout, the group-commit protocol, the read
// and durability paths, the recovery ordering invariant and the
// compaction crash matrix.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Framing errors.
var (
	// ErrCorrupt marks a record whose checksum or structure is invalid.
	ErrCorrupt = errors.New("storage: corrupt record")
	// ErrTooLarge marks keys or values above the framing limits.
	ErrTooLarge = errors.New("storage: key or value too large")
)

// Framing limits. Keys index recipes and metadata, so they are short;
// values hold encoded recipes or serialized tables and stay well under a
// segment.
const (
	// MaxKeyLen bounds key size.
	MaxKeyLen = 1 << 10
	// MaxValueLen bounds value size.
	MaxValueLen = 1 << 26
)

// record flags.
const (
	flagTombstone byte = 1 << 0
)

// castagnoli is the CRC32C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// record is one framed entry in a segment file:
//
//	crc32c  uint32 LE  over everything after the checksum field
//	flags   byte       bit0 = tombstone
//	keyLen  uvarint
//	valLen  uvarint
//	key     keyLen bytes
//	value   valLen bytes (absent for tombstones)
type record struct {
	key       []byte
	value     []byte
	tombstone bool
}

// appendRecord serializes rec into buf and returns the extended slice.
func appendRecord(buf []byte, rec record) ([]byte, error) {
	if len(rec.key) == 0 || len(rec.key) > MaxKeyLen {
		return buf, fmt.Errorf("%w: key length %d", ErrTooLarge, len(rec.key))
	}
	if len(rec.value) > MaxValueLen {
		return buf, fmt.Errorf("%w: value length %d", ErrTooLarge, len(rec.value))
	}
	var flags byte
	if rec.tombstone {
		flags |= flagTombstone
	}
	var hdr [1 + 2*binary.MaxVarintLen32]byte
	hdr[0] = flags
	n := 1
	n += binary.PutUvarint(hdr[n:], uint64(len(rec.key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(rec.value)))

	crc := crc32.New(castagnoli)
	crc.Write(hdr[:n])
	crc.Write(rec.key)
	crc.Write(rec.value)

	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	buf = append(buf, sum[:]...)
	buf = append(buf, hdr[:n]...)
	buf = append(buf, rec.key...)
	buf = append(buf, rec.value...)
	return buf, nil
}

// decodeFramedValue validates one complete framed record in buf and
// returns its value without copying (the value aliases buf, which the
// caller owns). wantKey guards against keydir/log skew. This is the
// allocation-free point-read path; streaming replay uses recordReader.
func decodeFramedValue(buf []byte, wantKey string) ([]byte, error) {
	if len(buf) < 7 { // checksum + flags + two varint bytes + 1-byte key
		return nil, fmt.Errorf("%w: short record", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(buf[:4])
	if crc32.Checksum(buf[4:], castagnoli) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	flags := buf[4]
	p := 5
	keyLen, n := binary.Uvarint(buf[p:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad key length", ErrCorrupt)
	}
	p += n
	valLen, n := binary.Uvarint(buf[p:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad value length", ErrCorrupt)
	}
	p += n
	if keyLen == 0 || keyLen > MaxKeyLen || valLen > MaxValueLen ||
		uint64(len(buf)-p) != keyLen+valLen {
		return nil, fmt.Errorf("%w: lengths key=%d value=%d frame=%d", ErrCorrupt, keyLen, valLen, len(buf))
	}
	if flags&flagTombstone != 0 {
		return nil, fmt.Errorf("%w: keydir points at a tombstone", ErrCorrupt)
	}
	key := buf[p : p+int(keyLen)]
	if string(key) != wantKey {
		return nil, fmt.Errorf("%w: keydir points at record for %q, want %q", ErrCorrupt, key, wantKey)
	}
	return buf[p+int(keyLen):], nil
}

// recordReader decodes consecutive records from a segment stream and
// tracks byte offsets so callers can build the key directory.
type recordReader struct {
	r   *countingReader
	buf []byte
}

// newRecordReader wraps an io.Reader positioned at a segment start.
func newRecordReader(r io.Reader) *recordReader {
	return &recordReader{r: &countingReader{r: r}}
}

// offset returns the stream offset of the next record.
func (rr *recordReader) offset() int64 { return rr.r.n }

// next decodes one record. It returns io.EOF at a clean end of stream and
// ErrCorrupt (possibly wrapped) for torn or damaged entries.
func (rr *recordReader) next() (record, error) {
	var sum [4]byte
	if _, err := io.ReadFull(rr.r, sum[:]); err != nil {
		if err == io.EOF {
			return record{}, io.EOF
		}
		return record{}, fmt.Errorf("%w: truncated checksum: %v", ErrCorrupt, err)
	}
	want := binary.LittleEndian.Uint32(sum[:])

	crc := crc32.New(castagnoli)
	tee := io.TeeReader(rr.r, crc)

	var flags [1]byte
	if _, err := io.ReadFull(tee, flags[:]); err != nil {
		return record{}, fmt.Errorf("%w: truncated flags: %v", ErrCorrupt, err)
	}
	br := &byteReaderFrom{r: tee}
	keyLen, err := binary.ReadUvarint(br)
	if err != nil {
		return record{}, fmt.Errorf("%w: bad key length: %v", ErrCorrupt, err)
	}
	valLen, err := binary.ReadUvarint(br)
	if err != nil {
		return record{}, fmt.Errorf("%w: bad value length: %v", ErrCorrupt, err)
	}
	if keyLen == 0 || keyLen > MaxKeyLen || valLen > MaxValueLen {
		return record{}, fmt.Errorf("%w: lengths key=%d value=%d", ErrCorrupt, keyLen, valLen)
	}
	need := int(keyLen + valLen)
	if cap(rr.buf) < need {
		rr.buf = make([]byte, need)
	}
	body := rr.buf[:need]
	if _, err := io.ReadFull(tee, body); err != nil {
		return record{}, fmt.Errorf("%w: truncated body: %v", ErrCorrupt, err)
	}
	if crc.Sum32() != want {
		return record{}, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	rec := record{
		key:       append([]byte(nil), body[:keyLen]...),
		value:     append([]byte(nil), body[keyLen:]...),
		tombstone: flags[0]&flagTombstone != 0,
	}
	if rec.tombstone && valLen != 0 {
		return record{}, fmt.Errorf("%w: tombstone with value", ErrCorrupt)
	}
	return rec, nil
}

// countingReader counts bytes consumed from the underlying reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// byteReaderFrom adapts an io.Reader to io.ByteReader for ReadUvarint.
type byteReaderFrom struct {
	r io.Reader
}

func (b *byteReaderFrom) ReadByte() (byte, error) {
	var one [1]byte
	if _, err := io.ReadFull(b.r, one[:]); err != nil {
		return 0, err
	}
	return one[0], nil
}
