package storage

import (
	"errors"
	"os"
	"sync"
)

// Crash-injection harness. A compaction is a fixed sequence of
// filesystem operations (create/write/fsync staged outputs, write/
// fsync/rename the manifest, rename outputs, unlink victims). opBudget
// simulates power loss after exactly N of them: the N+1th operation
// fails — a failing write first tears, persisting only half its bytes
// — and every later operation fails too, so cleanup code cannot tidy
// the wreckage any more than a real crash would let it. The
// table-driven matrix in compactor_test.go sweeps N over the whole
// sequence and asserts recovery from each resulting directory.

// errInjectedCrash marks a fault-injected failure.
var errInjectedCrash = errors.New("injected crash")

// opBudget is the shared countdown of allowed filesystem operations.
type opBudget struct {
	mu        sync.Mutex
	remaining int
	crashed   bool
	ops       int // total operations attempted (for sizing the matrix)
}

// spend consumes one operation; false means the crash has happened and
// the operation must fail.
func (b *opBudget) spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ops++
	if b.crashed {
		return false
	}
	if b.remaining <= 0 {
		b.crashed = true
		return false
	}
	b.remaining--
	return true
}

// faultFile wraps an *os.File, failing (and tearing) writes and syncs
// once the budget is exhausted. Reads and closes always succeed: a
// crash loses buffered state, not the ability to read what was written
// or release a descriptor.
type faultFile struct {
	f *os.File
	b *opBudget
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) { return ff.f.ReadAt(p, off) }

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if !ff.b.spend() {
		// Torn write: half the bytes reach the file, then power dies.
		n, _ := ff.f.WriteAt(p[:len(p)/2], off)
		return n, errInjectedCrash
	}
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) Sync() error {
	if !ff.b.spend() {
		return errInjectedCrash
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// faultFS wraps the production fs operations with the budget.
func faultFS(b *opBudget) fsOps {
	real := osFS()
	return fsOps{
		create: func(path string) (segfile, error) {
			if !b.spend() {
				return nil, errInjectedCrash
			}
			f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
			if err != nil {
				return nil, err
			}
			return &faultFile{f: f, b: b}, nil
		},
		rename: func(oldpath, newpath string) error {
			if !b.spend() {
				return errInjectedCrash
			}
			return os.Rename(oldpath, newpath)
		},
		remove: func(path string) error {
			if !b.spend() {
				return errInjectedCrash
			}
			return os.Remove(path)
		},
		syncDir: func(dir string) error {
			if !b.spend() {
				return errInjectedCrash
			}
			return real.syncDir(dir)
		},
	}
}

// crashClose simulates the process dying: every descriptor closes with
// no final sync, no retirement, no cleanup. Disk state is whatever the
// operations so far left behind.
func crashClose(s *Store) {
	s.closed.Store(true)
	s.segMu.Lock()
	for _, seg := range s.segments {
		seg.f.Close()
	}
	s.segMu.Unlock()
}
