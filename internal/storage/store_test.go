package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"culinary/internal/rng"
)

func openTemp(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTemp(t, Options{})
	cases := map[string][]byte{
		"a":              []byte("alpha"),
		"empty":          {},
		"binary":         {0, 1, 2, 255, 254},
		"recipe/0000001": []byte("tomato basil mozzarella"),
	}
	for k, v := range cases {
		if err := s.Put(k, v); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	for k, want := range cases {
		got, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("Get(%q) = %q, want %q", k, got, want)
		}
	}
	if s.Len() != len(cases) {
		t.Errorf("Len = %d, want %d", s.Len(), len(cases))
	}
}

func TestGetMissingKey(t *testing.T) {
	s := openTemp(t, Options{})
	if _, err := s.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) error = %v, want ErrNotFound", err)
	}
}

func TestOverwriteKeepsLatest(t *testing.T) {
	s := openTemp(t, Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v9" {
		t.Errorf("Get = %q, want v9", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if st := s.Stats(); st.DeadBytes == 0 {
		t.Error("overwrites should accumulate dead bytes")
	}
}

func TestDelete(t *testing.T) {
	s := openTemp(t, Options{})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: %v, want ErrNotFound", err)
	}
	if s.Has("k") {
		t.Error("Has after Delete = true")
	}
	// Deleting an absent key is a no-op.
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete absent: %v", err)
	}
}

func TestKeysSortedAndPrefixed(t *testing.T) {
	s := openTemp(t, Options{})
	for _, k := range []string{"b/2", "a/1", "b/1", "c"} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Keys()
	want := []string{"a/1", "b/1", "b/2", "c"}
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	bs := s.KeysWithPrefix("b/")
	if len(bs) != 2 || bs[0] != "b/1" || bs[1] != "b/2" {
		t.Errorf("KeysWithPrefix(b/) = %v", bs)
	}
}

func TestReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("key%03d", i), []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("key050"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 99 {
		t.Errorf("Len after reopen = %d, want 99", s2.Len())
	}
	if s2.Has("key050") {
		t.Error("deleted key survived reopen")
	}
	v, err := s2.Get("key099")
	if err != nil || string(v) != "val99" {
		t.Errorf("Get(key099) = %q, %v", v, err)
	}
}

func TestSegmentRotation(t *testing.T) {
	s := openTemp(t, Options{MaxSegmentBytes: 256})
	val := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments < 5 {
		t.Errorf("Segments = %d, want >= 5 with 256-byte rotation", st.Segments)
	}
	// Every key must still be readable across segments.
	for i := 0; i < 50; i++ {
		if _, err := s.Get(fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatalf("Get(k%02d): %v", i, err)
		}
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a crash mid-append: chop bytes off the active segment.
	path := segmentPath(dir, 1)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 9 {
		t.Errorf("Len = %d, want 9 (torn record dropped)", s2.Len())
	}
	// The store must accept appends after repair.
	if err := s2.Put("k9", []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	v, err := s2.Get("k9")
	if err != nil || string(v) != "rewritten" {
		t.Errorf("Get(k9) = %q, %v", v, err)
	}
}

func TestCorruptionInSealedSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte("v"), 32)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip a byte in the middle of the first (sealed) segment.
	path := segmentPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupted sealed segment = %v, want ErrCorrupt", err)
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 1024, CompactionFloorBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Write each key many times so most bytes are dead.
	for round := 0; round < 10; round++ {
		for i := 0; i < 20; i++ {
			if err := s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(round)}, 50)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.Delete(fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if !s.NeedsCompaction() {
		t.Fatalf("expected NeedsCompaction with stats %+v", before)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.DeadBytes != 0 {
		t.Errorf("DeadBytes after compact = %d, want 0", after.DeadBytes)
	}
	if after.Keys != 15 {
		t.Errorf("Keys after compact = %d, want 15", after.Keys)
	}
	// All live values readable with final contents.
	for i := 5; i < 20; i++ {
		v, err := s.Get(fmt.Sprintf("k%02d", i))
		if err != nil {
			t.Fatalf("Get after compact: %v", err)
		}
		if len(v) != 50 || v[0] != 9 {
			t.Errorf("k%02d = round %d value, want round 9", i, v[0])
		}
	}
	// Old segment files must be gone.
	ids, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != after.Segments {
		t.Errorf("on-disk segments %d != stats %d", len(ids), after.Segments)
	}
}

func TestCompactThenReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i%10), []byte(fmt.Sprintf("gen%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compact writes land in the new active segment.
	if err := s.Put("extra", []byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 11 {
		t.Errorf("Len = %d, want 11", s2.Len())
	}
	v, err := s2.Get("k05")
	if err != nil || string(v) != "gen25" {
		t.Errorf("Get(k05) = %q, %v; want gen25", v, err)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := openTemp(t, Options{})
	s.Close()
	if err := s.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Put on closed = %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get on closed = %v", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync on closed = %v", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact on closed = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close = %v", err)
	}
}

func TestKeyLimits(t *testing.T) {
	s := openTemp(t, Options{})
	if err := s.Put("", []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Errorf("empty key error = %v, want ErrTooLarge", err)
	}
	long := string(bytes.Repeat([]byte("k"), MaxKeyLen+1))
	if err := s.Put(long, []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized key error = %v, want ErrTooLarge", err)
	}
}

func TestFoldVisitsAllSorted(t *testing.T) {
	s := openTemp(t, Options{})
	for i := 9; i >= 0; i-- {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	err := s.Fold(func(k string, v []byte) error {
		visited = append(visited, k)
		if int(v[0]) != int(k[1]-'0') {
			t.Errorf("value mismatch for %s: %v", k, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 10 || visited[0] != "k0" || visited[9] != "k9" {
		t.Errorf("Fold order = %v", visited)
	}
	// Early-exit propagates the error.
	sentinel := errors.New("stop")
	if err := s.Fold(func(string, []byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("Fold error = %v, want sentinel", err)
	}
}

func TestSyncEveryPut(t *testing.T) {
	s := openTemp(t, Options{SyncEveryPut: true})
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("durable")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
}

// TestPropertyModelEquivalence drives the store with random operation
// sequences and checks it against a plain map model, including across a
// reopen at the end of each sequence.
func TestPropertyModelEquivalence(t *testing.T) {
	dirBase := t.TempDir()
	seq := 0
	check := func(seed uint64, nOps uint8) bool {
		seq++
		dir := filepath.Join(dirBase, fmt.Sprintf("case%d", seq))
		s, err := Open(dir, Options{MaxSegmentBytes: 512})
		if err != nil {
			t.Logf("Open: %v", err)
			return false
		}
		model := make(map[string]string)
		src := rng.New(seed + 1)
		for op := 0; op < int(nOps); op++ {
			key := fmt.Sprintf("k%d", src.Intn(12))
			switch src.Intn(4) {
			case 0: // delete
				if err := s.Delete(key); err != nil {
					t.Logf("Delete: %v", err)
					return false
				}
				delete(model, key)
			case 1, 2, 3: // put
				val := fmt.Sprintf("v%d-%d", op, src.Intn(100))
				if err := s.Put(key, []byte(val)); err != nil {
					t.Logf("Put: %v", err)
					return false
				}
				model[key] = val
			}
		}
		ok := storeMatchesModel(t, s, model)
		s.Close()
		if !ok {
			return false
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Logf("reopen: %v", err)
			return false
		}
		defer s2.Close()
		return storeMatchesModel(t, s2, model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func storeMatchesModel(t *testing.T, s *Store, model map[string]string) bool {
	t.Helper()
	if s.Len() != len(model) {
		t.Logf("Len = %d, model %d", s.Len(), len(model))
		return false
	}
	for k, want := range model {
		got, err := s.Get(k)
		if err != nil || string(got) != want {
			t.Logf("Get(%q) = %q, %v; want %q", k, got, err, want)
			return false
		}
	}
	return true
}
