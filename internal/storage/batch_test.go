package storage

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"syscall"
	"testing"
)

func openBatchStore(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

func TestWriteBatchBasic(t *testing.T) {
	s, dir := openBatchStore(t, Options{SyncEveryPut: true})
	if err := s.Put("doomed", []byte("x")); err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "doomed", "c"}
	values := [][]byte{[]byte("va"), []byte("vb"), nil, []byte("vc")}
	tombs := []bool{false, false, true, false}
	for i, err := range s.WriteBatch(keys, values, tombs) {
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	for _, k := range []string{"a", "b", "c"} {
		got, err := s.Get(k)
		if err != nil || !bytes.Equal(got, []byte("v"+k)) {
			t.Fatalf("Get(%q) = %q, %v", k, got, err)
		}
	}
	if _, err := s.Get("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstoned key still resolves: %v", err)
	}

	// The whole state must survive a close/reopen cycle.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, k := range []string{"a", "b", "c"} {
		if got, err := re.Get(k); err != nil || !bytes.Equal(got, []byte("v"+k)) {
			t.Fatalf("after reopen Get(%q) = %q, %v", k, got, err)
		}
	}
	if _, err := re.Get("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone lost across reopen: %v", err)
	}
}

// TestWriteBatchRedundantTombstone pins the no-op contract: deleting an
// absent key inside a batch succeeds without logging anything, exactly
// like Store.Delete.
func TestWriteBatchRedundantTombstone(t *testing.T) {
	s, _ := openBatchStore(t, Options{})
	before := s.Stats()
	errs := s.WriteBatch(
		[]string{"ghost", "real"},
		[][]byte{nil, []byte("v")},
		[]bool{true, false},
	)
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("errs = %v", errs)
	}
	after := s.Stats()
	if after.Keys != before.Keys+1 {
		t.Fatalf("keys %d -> %d, want one new key", before.Keys, after.Keys)
	}
	if got, err := s.Get("real"); err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("Get(real) = %q, %v", got, err)
	}
}

// TestWriteBatchEquivalentToSerialWrites proves one WriteBatch leaves
// the same durable state as the same records written one at a time.
func TestWriteBatchEquivalentToSerialWrites(t *testing.T) {
	batched, _ := openBatchStore(t, Options{SyncEveryPut: true})
	serial, _ := openBatchStore(t, Options{SyncEveryPut: true})

	var keys []string
	var values [][]byte
	var tombs []bool
	for i := 0; i < 40; i++ {
		keys = append(keys, fmt.Sprintf("k%02d", i%16)) // duplicates on purpose
		values = append(values, []byte(fmt.Sprintf("v%d", i)))
		tombs = append(tombs, i%7 == 3)
	}
	for i, err := range batched.WriteBatch(keys, values, tombs) {
		if err != nil {
			t.Fatalf("batched record %d: %v", i, err)
		}
	}
	for i := range keys {
		var err error
		if tombs[i] {
			err = serial.Delete(keys[i])
		} else {
			err = serial.Put(keys[i], values[i])
		}
		if err != nil {
			t.Fatalf("serial record %d: %v", i, err)
		}
	}
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("k%02d", i)
		bv, berr := batched.Get(k)
		sv, serr := serial.Get(k)
		if (berr == nil) != (serr == nil) || !bytes.Equal(bv, sv) {
			t.Fatalf("key %q: batched (%q, %v) vs serial (%q, %v)", k, bv, berr, sv, serr)
		}
	}
}

// TestWriteBatchMidFaultDegradesWholeGroup: an injected I/O failure on
// the batch's sync fails every record that did not reach durability,
// degrades the store, and queued writers behind the wedge observe
// ErrWriteWedged — the signal the HTTP layer maps to one retryable 503
// per caller.
func TestWriteBatchMidFaultDegradesWholeGroup(t *testing.T) {
	inj := NewErrInjector()
	s, _ := openBatchStore(t, Options{SyncEveryPut: true, FaultInjection: inj})
	if err := s.Put("seed", []byte("x")); err != nil {
		t.Fatal(err)
	}
	inj.Arm(syscall.EIO, FaultSync, FaultWrite)
	errs := s.WriteBatch(
		[]string{"p", "q"},
		[][]byte{[]byte("1"), []byte("2")},
		[]bool{false, false},
	)
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed != len(errs) {
		t.Fatalf("want the whole group failed under a sync fault, got errs = %v", errs)
	}
	if s.Health() == HealthHealthy {
		t.Fatal("store still healthy after injected batch fault")
	}
	// A follow-up batch must fast-fail with the wedge error.
	for _, err := range s.WriteBatch([]string{"r"}, [][]byte{[]byte("3")}, []bool{false}) {
		if !errors.Is(err, ErrWriteWedged) {
			t.Fatalf("queued batch error = %v, want ErrWriteWedged", err)
		}
	}
	// None of the failed records may be visible.
	for _, k := range []string{"p", "q", "r"} {
		if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("unacked record %q visible: %v", k, err)
		}
	}
	inj.Clear()
	if err := s.TryRecoverWrites(); err != nil {
		t.Fatal(err)
	}
	for i, err := range s.WriteBatch([]string{"p", "q"}, [][]byte{[]byte("1"), []byte("2")}, []bool{false, false}) {
		if err != nil {
			t.Fatalf("post-recovery record %d: %v", i, err)
		}
	}
	if got, err := s.Get("p"); err != nil || !bytes.Equal(got, []byte("1")) {
		t.Fatalf("post-recovery Get(p) = %q, %v", got, err)
	}
}

// TestWriteBatchConcurrentWithPuts races batches against single puts:
// every acknowledged record must be durable and the group commit must
// not lose or reorder same-key updates within one batch.
func TestWriteBatchConcurrentWithPuts(t *testing.T) {
	s, dir := openBatchStore(t, Options{SyncEveryPut: true})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := s.Put(fmt.Sprintf("solo-%d-%d", w, i), []byte{byte(w)}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				keys := make([]string, 5)
				values := make([][]byte, 5)
				tombs := make([]bool, 5)
				for j := range keys {
					keys[j] = fmt.Sprintf("batch-%d-%d-%d", w, i, j)
					values[j] = []byte{byte(j)}
				}
				// Same-key overwrite inside one batch: last wins.
				keys[4], values[4] = keys[0], []byte{0xff}
				for k, err := range s.WriteBatch(keys, values, tombs) {
					if err != nil {
						t.Errorf("batch record %d: %v", k, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for w := 0; w < 4; w++ {
		for i := 0; i < 25; i++ {
			k := fmt.Sprintf("solo-%d-%d", w, i)
			if _, err := re.Get(k); err != nil {
				t.Fatalf("acked put %q lost: %v", k, err)
			}
		}
	}
	for w := 0; w < 2; w++ {
		for i := 0; i < 10; i++ {
			if got, err := re.Get(fmt.Sprintf("batch-%d-%d-0", w, i)); err != nil || !bytes.Equal(got, []byte{0xff}) {
				t.Fatalf("in-batch overwrite lost: %q, %v", got, err)
			}
		}
	}
}
