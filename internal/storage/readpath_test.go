package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMmapReadPathServesSealedSegments: with Mmap on, reads of keys in
// sealed segments come from the mapping (zero syscalls) and reads of
// the active segment fall back to pread — both byte-correct.
func TestMmapReadPathServesSealedSegments(t *testing.T) {
	if !mmapSupported {
		t.Skip("platform has no mmap; the pread fallback is what Options.Mmap degrades to here")
	}
	s := openTemp(t, Options{MaxSegmentBytes: 512, Mmap: true})
	const n = 40
	want := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%03d", i)
		v := bytes.Repeat([]byte{byte('a' + i%26)}, 20+i%30)
		want[k] = v
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	rs := s.ReadStats()
	if rs.MmapSegments == 0 {
		t.Fatal("no sealed segment was mapped")
	}
	for k, v := range want {
		got, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("Get(%q) = %q, want %q", k, got, v)
		}
	}
	rs = s.ReadStats()
	if rs.MmapReads == 0 {
		t.Error("no read was served via mmap")
	}
	if rs.PreadReads == 0 {
		t.Error("no read was served via pread (active segment should be unmapped)")
	}

	// Reopen: sealed segments map again at Open; contents identical.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(s.dir, Options{MaxSegmentBytes: 512, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rs := s2.ReadStats(); rs.MmapSegments == 0 {
		t.Error("no segment mapped after reopen")
	}
	for k, v := range want {
		got, err := s2.Get(k)
		if err != nil {
			t.Fatalf("reopened Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("reopened Get(%q) = %q, want %q", k, got, v)
		}
	}
}

// TestReadCacheCoherence: hits serve the latest value; Put and Delete
// invalidate; the returned slice is the caller's to mutate.
func TestReadCacheCoherence(t *testing.T) {
	s := openTemp(t, Options{ReadCacheBytes: 1 << 20})
	if err := s.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := s.Get("k")
		if err != nil || string(got) != "v1" {
			t.Fatalf("Get #%d = %q, %v", i, got, err)
		}
		got[0] = 'X' // caller-owned: must not poison the cache
	}
	rs := s.ReadStats()
	if rs.CacheHits == 0 {
		t.Fatalf("repeat reads produced no cache hits: %+v", rs)
	}
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("k"); err != nil || string(got) != "v2" {
		t.Fatalf("Get after overwrite = %q, %v, want v2", got, err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); err == nil {
		t.Fatal("Get after Delete served a cached value")
	}
}

// TestReadCacheInvalidatedOnSegmentRetire: when compaction retires a
// segment, cached values read from it are dropped, and subsequent
// reads repopulate from the rewritten copies.
func TestReadCacheInvalidatedOnSegmentRetire(t *testing.T) {
	s := openTemp(t, Options{MaxSegmentBytes: 256, Mmap: true, ReadCacheBytes: 1 << 20})
	const n = 16
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key%03d", i), []byte(strings.Repeat("v", 40))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := s.Get(fmt.Sprintf("key%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if rs := s.ReadStats(); rs.CacheEntries == 0 {
		t.Fatalf("no entries cached before compaction: %+v", rs)
	}
	// Compact rewrites every sealed segment (it rotates the active one
	// first), so every cached entry's source segment retires.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if rs := s.ReadStats(); rs.CacheEntries != 0 {
		t.Fatalf("cache kept %d entries tagged to retired segments", rs.CacheEntries)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%03d", i)
		got, err := s.Get(k)
		if err != nil || len(got) != 40 {
			t.Fatalf("Get(%q) after compaction = %d bytes, %v", k, len(got), err)
		}
	}
	if rs := s.ReadStats(); rs.CacheEntries == 0 {
		t.Error("cache did not repopulate after compaction")
	}
}

// TestPreallocatedTailNotReplayed: a crash leaves the active segment
// with its preallocated zero tail (and possibly torn garbage at the
// logical end); reopening must recover exactly the committed records —
// the zero region never replays as data.
func TestPreallocatedTailNotReplayed(t *testing.T) {
	for _, garbage := range []bool{false, true} {
		name := "zeroTail"
		if garbage {
			name = "tornThenZeros"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{MaxSegmentBytes: 4096})
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[string]string)
			for i := 0; i < 10; i++ {
				k := fmt.Sprintf("key%02d", i)
				v := strings.Repeat(string(rune('a'+i)), 15)
				want[k] = v
				if err := s.Put(k, []byte(v)); err != nil {
					t.Fatal(err)
				}
			}
			logical := s.active.size
			path := s.active.path
			crashClose(s) // no truncate, no final sync: tail stays

			if garbage {
				// A torn append: a few non-zero bytes at the logical
				// end, zeros (or EOF) after. Must be discarded, not
				// replayed, and must not hide the committed prefix.
				f, err := os.OpenFile(path, os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe}, logical); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}

			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open after crash: %v", err)
			}
			defer s2.Close()
			if got := s2.Len(); got != len(want) {
				t.Fatalf("recovered %d keys, want %d", got, len(want))
			}
			for k, v := range want {
				got, err := s2.Get(k)
				if err != nil || string(got) != v {
					t.Fatalf("Get(%q) = %q, %v, want %q", k, got, err, v)
				}
			}
			// The repaired segment must have been trimmed to its
			// logical size: appends resume exactly at the crash point.
			if s2.active.size != logical {
				t.Errorf("recovered active size = %d, want %d", s2.active.size, logical)
			}
			if err := s2.Put("after", []byte("crash")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMmapReadPathStress is the -race proof for the tentpole: reads
// through the mapping and the cache stay correct while segments
// rotate and the background compactor retires them. Readers assert
// per-key monotonicity (a read never returns a value older than one
// the same goroutine already observed committed) and well-formedness
// (a garbage read — e.g. use-after-unmap — cannot produce a value
// carrying the right key prefix and a valid counter).
func TestMmapReadPathStress(t *testing.T) {
	s := openTemp(t, Options{
		MaxSegmentBytes:      4096,
		CompactionFloorBytes: 1,
		CompactInterval:      time.Millisecond,
		CompactGarbageRatio:  0.2,
		Mmap:                 true,
		ReadCacheBytes:       32 << 10,
	})
	const stableKeys = 24
	key := func(i int) string { return fmt.Sprintf("stable/%03d", i) }
	pad := strings.Repeat("p", 48)
	encode := func(k string, ver int64) []byte {
		return []byte(k + "#" + strconv.FormatInt(ver, 10) + "#" + pad)
	}
	var committed [stableKeys]atomic.Int64
	for i := 0; i < stableKeys; i++ {
		if err := s.Put(key(i), encode(key(i), 0)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	fail := make(chan error, 16)
	report := func(err error) {
		select {
		case fail <- err:
		default:
		}
	}
	var wg sync.WaitGroup

	// Writers: bump versions on the stable keys; the version becomes
	// the committed floor only after Put returns.
	const writers = 2
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ver := int64(1); ; ver++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := w; i < stableKeys; i += writers {
					k := key(i)
					if err := s.Put(k, encode(k, ver)); err != nil {
						report(fmt.Errorf("put %s: %w", k, err))
						return
					}
					committed[i].Store(ver)
				}
			}
		}(w)
	}

	// Churn: put+delete throwaway keys so sealed segments accumulate
	// garbage and the compactor keeps retiring them (and their
	// mappings and cache entries).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("churn/%03d", i%64)
			if err := s.Put(k, []byte(pad)); err != nil {
				report(fmt.Errorf("churn put: %w", err))
				return
			}
			if err := s.Delete(k); err != nil {
				report(fmt.Errorf("churn delete: %w", err))
				return
			}
		}
	}()

	// Readers: floor-then-read; the value must be well-formed and at
	// least as new as the floor observed before the read started.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rnd.Intn(stableKeys)
				k := key(i)
				floor := committed[i].Load()
				val, err := s.Get(k)
				if err != nil {
					report(fmt.Errorf("get %s: %w", k, err))
					return
				}
				parts := strings.SplitN(string(val), "#", 3)
				if len(parts) != 3 || parts[0] != k || parts[2] != pad {
					report(fmt.Errorf("malformed value for %s: %q", k, val))
					return
				}
				ver, err := strconv.ParseInt(parts[1], 10, 64)
				if err != nil {
					report(fmt.Errorf("bad version in %q: %w", val, err))
					return
				}
				if ver < floor {
					report(fmt.Errorf("stale read of %s: version %d < committed floor %d", k, ver, floor))
					return
				}
			}
		}(r)
	}

	// Run at least minRun, then keep going until the machinery the
	// test claims to exercise has demonstrably engaged — mapped reads,
	// cache hits, a completed compaction pass — or the hard deadline
	// expires (a 1-vCPU box running the whole suite can starve any of
	// the goroutines for a while; a fixed window flakes).
	const minRun = 300 * time.Millisecond
	const maxRun = 15 * time.Second
	start := time.Now()
	engaged := func() bool {
		rs := s.ReadStats()
		return (!mmapSupported || rs.MmapReads > 0) && rs.CacheHits > 0 && s.CompactionStats().Runs > 0
	}
	for {
		select {
		case err := <-fail:
			close(stop)
			wg.Wait()
			t.Fatal(err)
		case <-time.After(10 * time.Millisecond):
		}
		if el := time.Since(start); el >= maxRun || (el >= minRun && engaged()) {
			break
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	rs := s.ReadStats()
	if mmapSupported && rs.MmapReads == 0 {
		t.Error("stress run served no reads via mmap")
	}
	if rs.CacheHits == 0 {
		t.Error("stress run had no cache hits")
	}
	if s.CompactionStats().Runs == 0 {
		t.Error("background compactor never completed a pass during the stress run")
	}

	// Final ground truth after all writers stopped.
	for i := 0; i < stableKeys; i++ {
		k := key(i)
		want := encode(k, committed[i].Load())
		got, err := s.Get(k)
		if err != nil {
			t.Fatalf("final Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("final Get(%q) = %q, want %q", k, got, want)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
