package storage

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// segOf returns the segment currently holding key's live record.
func segOf(t *testing.T, s *Store, key string) uint64 {
	t.Helper()
	sh := s.shardFor(key)
	sh.mu.RLock()
	loc, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		t.Fatalf("segOf: %q not in keydir", key)
	}
	return loc.segID
}

// flipFrameByte corrupts key's on-disk frame by inverting the last
// byte of its value region, breaking the frame CRC.
func flipFrameByte(t *testing.T, s *Store, key string) {
	t.Helper()
	sh := s.shardFor(key)
	sh.mu.RLock()
	loc, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		t.Fatalf("flipFrameByte: %q not in keydir", key)
	}
	path := segmentPath(s.dir, loc.segID)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("opening segment for corruption: %v", err)
	}
	defer f.Close()
	b := make([]byte, 1)
	pos := loc.offset + loc.length - 1
	if _, err := f.ReadAt(b, pos); err != nil {
		t.Fatalf("reading byte to flip: %v", err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, pos); err != nil {
		t.Fatalf("flipping byte: %v", err)
	}
}

func activeSegID(s *Store) uint64 {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	return s.active.id
}

// TestScrubQuarantinesAndSalvagesBitFlip is the tentpole integration
// test: a bit flip in a cold sealed segment is detected by a scrub
// pass, the segment is quarantined and salvaged — intact live records
// rewritten, the clobbered record's key dropped and counted — and the
// corrupt file is retired so reopen never sees it.
func TestScrubQuarantinesAndSalvagesBitFlip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	val := func(i int) string {
		return fmt.Sprintf("scrub-value-%02d-%s", i, strings.Repeat("v", 120))
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("scrub-%02d", i), []byte(val(i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}

	// Pick a victim key living in a sealed segment and flip a byte of
	// its frame on disk.
	victim := ""
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("scrub-%02d", i)
		if segOf(t, s, k) != activeSegID(s) {
			victim = k
			break
		}
	}
	if victim == "" {
		t.Fatal("no key landed in a sealed segment; MaxSegmentBytes too large for fixture")
	}
	corruptSeg := segOf(t, s, victim)
	flipFrameByte(t, s, victim)

	if err := s.Scrub(); err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	st := s.ScrubStats()
	if st.CorruptionsFound != 1 {
		t.Fatalf("CorruptionsFound = %d, want 1", st.CorruptionsFound)
	}
	if st.RecordsLost != 1 {
		t.Fatalf("RecordsLost = %d, want 1 (only the flipped frame)", st.RecordsLost)
	}
	if st.RecordsSalvaged == 0 {
		t.Fatal("RecordsSalvaged = 0, want the segment's intact records rewritten")
	}
	if q := s.HealthStats().QuarantinedSegments; q != 0 {
		t.Fatalf("QuarantinedSegments = %d after salvage, want 0 (segment retired)", q)
	}
	if _, err := os.Stat(segmentPath(dir, corruptSeg)); !os.IsNotExist(err) {
		t.Fatalf("corrupt segment file still on disk (stat err %v)", err)
	}

	// The clobbered record is lost, not half-served; every other record
	// survives byte-for-byte.
	if _, err := s.Get(victim); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(%s) err = %v, want ErrNotFound after losing its frame", victim, err)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("scrub-%02d", i)
		if k == victim {
			continue
		}
		got, err := s.Get(k)
		if err != nil || string(got) != val(i) {
			t.Fatalf("post-salvage Get(%q) = (%q, %v), want %q", k, got, err, val(i))
		}
	}

	// A second pass finds nothing new.
	if err := s.Scrub(); err != nil {
		t.Fatalf("second Scrub: %v", err)
	}
	if got := s.ScrubStats().CorruptionsFound; got != 1 {
		t.Fatalf("CorruptionsFound after clean re-scrub = %d, want still 1", got)
	}

	// Reopen: the salvaged state replays cleanly.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after salvage: %v", err)
	}
	defer s2.Close()
	if _, err := s2.Get(victim); !errors.Is(err, ErrNotFound) {
		t.Fatalf("reopened Get(%s) err = %v, want ErrNotFound", victim, err)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("scrub-%02d", i)
		if k == victim {
			continue
		}
		got, err := s2.Get(k)
		if err != nil || string(got) != val(i) {
			t.Fatalf("reopened Get(%q) = (%q, %v), want %q", k, got, err, val(i))
		}
	}
}

// TestScrubRescuesTombstones: salvaging a corrupt segment must carry
// its tombstones forward when an older segment still holds a put for
// the same key — dropping them would resurrect deleted keys at the
// next replay.
func TestScrubRescuesTombstones(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	filler := strings.Repeat("f", 150)
	put := func(k string) {
		t.Helper()
		if err := s.Put(k, []byte(filler)); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}

	// Segment A: the doomed put, then fill until rotation.
	put("dead-key")
	segA := segOf(t, s, "dead-key")
	i := 0
	for activeSegID(s) == segA {
		put(fmt.Sprintf("fill-a-%02d", i))
		i++
	}
	// Segment B, from the top: tombstone for dead-key, a sacrificial
	// record to corrupt, then fill until B seals.
	segB := activeSegID(s)
	if err := s.Delete("dead-key"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	put("sacrificial")
	if got := segOf(t, s, "sacrificial"); got != segB {
		t.Fatalf("fixture: sacrificial landed in segment %d, want %d (with the tombstone)", got, segB)
	}
	i = 0
	for activeSegID(s) == segB {
		put(fmt.Sprintf("fill-b-%02d", i))
		i++
	}

	flipFrameByte(t, s, "sacrificial")
	if err := s.Scrub(); err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if got := s.ScrubStats().CorruptionsFound; got != 1 {
		t.Fatalf("CorruptionsFound = %d, want 1", got)
	}
	if _, err := s.Get("sacrificial"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(sacrificial) err = %v, want ErrNotFound", err)
	}
	if _, err := s.Get("dead-key"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(dead-key) err = %v, want ErrNotFound", err)
	}

	// The replay is the real referee: without the rescued tombstone,
	// segment A's put would resurrect dead-key here.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if _, err := s2.Get("dead-key"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("reopened Get(dead-key) err = %v, want ErrNotFound — tombstone lost in salvage", err)
	}
	if _, err := s2.Get("sacrificial"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("reopened Get(sacrificial) err = %v, want ErrNotFound", err)
	}
	if got, err := s2.Get("fill-a-00"); err != nil || string(got) != filler {
		t.Fatalf("reopened Get(fill-a-00) = (%q, %v), want filler", got, err)
	}
}

// TestScrubMappedSegment exercises the mmap fast path of the CRC walk:
// with Mmap on, sealed segments verify out of the mapping, and a flip
// is still caught (the mapping shares pages with the file).
func TestScrubMappedSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 1 << 10, Mmap: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for i := 0; i < 30; i++ {
		if err := s.Put(fmt.Sprintf("m-%02d", i), []byte(strings.Repeat("m", 128))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := s.Scrub(); err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	st := s.ScrubStats()
	if st.SegmentsVerified == 0 || st.BytesVerified == 0 {
		t.Fatalf("ScrubStats = %+v, want verified segments and bytes", st)
	}
	if st.CorruptionsFound != 0 {
		t.Fatalf("CorruptionsFound = %d on clean data", st.CorruptionsFound)
	}

	victim := ""
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("m-%02d", i)
		if segOf(t, s, k) != activeSegID(s) {
			victim = k
			break
		}
	}
	if victim == "" {
		t.Fatal("no sealed key")
	}
	flipFrameByte(t, s, victim)
	if err := s.Scrub(); err != nil {
		t.Fatalf("Scrub after flip: %v", err)
	}
	if got := s.ScrubStats().CorruptionsFound; got != 1 {
		t.Fatalf("CorruptionsFound = %d, want 1 via the mapped walk", got)
	}
	if q := s.HealthStats().QuarantinedSegments; q != 0 {
		t.Fatalf("QuarantinedSegments = %d, want 0 after salvage", q)
	}
}

// TestScrubBackgroundLoop: the paced goroutine walks sealed segments
// round-robin without any explicit call.
func TestScrubBackgroundLoop(t *testing.T) {
	s := openTemp(t, Options{MaxSegmentBytes: 1 << 10, ScrubInterval: 2 * time.Millisecond})
	for i := 0; i < 30; i++ {
		if err := s.Put(fmt.Sprintf("bg-%02d", i), []byte(strings.Repeat("b", 128))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if !s.ScrubStats().Running {
		t.Fatal("scrubber not running despite ScrubInterval")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.ScrubStats().SegmentsVerified < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("background scrub verified %d segments, want >= 3", s.ScrubStats().SegmentsVerified)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if s.ScrubStats().Running {
		t.Fatal("scrubber still reported running after Close")
	}
}
