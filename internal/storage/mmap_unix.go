//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported gates tests that assert mapped reads actually happen.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared. The caller owns
// the returned slice and must munmapFile it exactly once.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size > int64(maxMapBytes) {
		return nil, fmt.Errorf("storage: unmappable segment size %d", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(b []byte) error { return syscall.Munmap(b) }

// maxMapBytes caps one mapping at the platform int range (mmap takes
// an int length); segments are MaxSegmentBytes-sized, far below it.
const maxMapBytes = int(^uint(0) >> 1)
