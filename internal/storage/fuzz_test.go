package storage

import (
	"bytes"
	"io"
	"testing"
)

// FuzzDecodeRecord drives both record decoders — the zero-copy point
// read (decodeFramedValue) and the streaming replay reader
// (recordReader) — with three classes of input:
//
//  1. arbitrary bytes: neither decoder may panic, and anything they
//     accept must respect the framing bounds;
//  2. well-formed frames: both decoders must round-trip them exactly;
//  3. single-bit corruptions of well-formed frames: both decoders must
//     reject them — the CRC32C covers every byte after the checksum
//     field, so a corrupt frame must never be mis-read as valid data.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte("recipe/0001"), []byte("tomato basil mozzarella"), false, uint16(0), []byte{})
	f.Add([]byte("k"), []byte{}, false, uint16(13), []byte("\x00\x01\x02\x03"))
	f.Add([]byte("meta/format"), []byte(nil), true, uint16(99), []byte("garbage that is not a frame"))
	f.Add([]byte("key"), bytes.Repeat([]byte{0xAB}, 300), false, uint16(2048), bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, key, value []byte, tomb bool, flip uint16, raw []byte) {
		// Class 1: raw bytes must never panic or yield out-of-bounds
		// records.
		if val, err := decodeFramedValue(raw, string(key)); err == nil {
			if len(val) > MaxValueLen {
				t.Fatalf("decodeFramedValue accepted value of %d bytes", len(val))
			}
		}
		assertReaderSane(t, raw)

		// Classes 2 and 3 need an encodable record.
		if len(key) == 0 || len(key) > MaxKeyLen || len(value) > MaxValueLen {
			return
		}
		if tomb {
			value = nil
		}
		frame, err := appendRecord(nil, record{key: key, value: value, tombstone: tomb})
		if err != nil {
			t.Fatalf("appendRecord rejected in-bounds record: %v", err)
		}

		// Class 2: exact round trips.
		if !tomb {
			val, err := decodeFramedValue(frame, string(key))
			if err != nil {
				t.Fatalf("decodeFramedValue rejected its own encoding: %v", err)
			}
			if !bytes.Equal(val, value) {
				t.Fatalf("decodeFramedValue = %q, want %q", val, value)
			}
		}
		rec, err := newRecordReader(bytes.NewReader(frame)).next()
		if err != nil {
			t.Fatalf("recordReader rejected its own encoding: %v", err)
		}
		if !bytes.Equal(rec.key, key) || !bytes.Equal(rec.value, value) || rec.tombstone != tomb {
			t.Fatalf("recordReader round trip = (%q, %q, %v), want (%q, %q, %v)",
				rec.key, rec.value, rec.tombstone, key, value, tomb)
		}

		// Class 3: flip one bit anywhere in the frame; both decoders
		// must reject, never mis-read.
		corrupt := append([]byte(nil), frame...)
		bit := int(flip) % (len(corrupt) * 8)
		corrupt[bit/8] ^= 1 << (bit % 8)
		if _, err := decodeFramedValue(corrupt, string(key)); err == nil {
			t.Fatalf("decodeFramedValue accepted frame with bit %d flipped", bit)
		}
		if _, err := newRecordReader(bytes.NewReader(corrupt)).next(); err == nil {
			t.Fatalf("recordReader accepted frame with bit %d flipped", bit)
		}
	})
}

// assertReaderSane streams arbitrary bytes through recordReader:
// however mangled the input, every record it yields must be within the
// framing bounds, and it must terminate.
func assertReaderSane(t *testing.T, raw []byte) {
	t.Helper()
	rr := newRecordReader(bytes.NewReader(raw))
	for {
		rec, err := rr.next()
		if err == io.EOF || err != nil {
			return
		}
		if len(rec.key) == 0 || len(rec.key) > MaxKeyLen || len(rec.value) > MaxValueLen {
			t.Fatalf("recordReader yielded out-of-bounds record: key %d bytes, value %d bytes",
				len(rec.key), len(rec.value))
		}
		if rec.tombstone && len(rec.value) != 0 {
			t.Fatal("recordReader yielded tombstone with value")
		}
	}
}
