// Package report renders experiment outputs as aligned ASCII tables,
// text heatmaps and bar charts (the repository's stand-ins for the
// paper's figures), and CSV for downstream plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV writes the table (headers + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Heatmap renders a matrix of values as a text heatmap with row/column
// labels, shading cells by value using a density ramp — the stand-in for
// Fig 2.
type Heatmap struct {
	Title     string
	RowLabels []string
	ColLabels []string
	Values    [][]float64
}

// shades from lightest to darkest.
var shades = []string{" ", ".", ":", "-", "=", "+", "*", "#", "%", "@"}

// Render writes the heatmap. Values are normalized per matrix.
func (h *Heatmap) Render(w io.Writer) error {
	if len(h.Values) == 0 {
		_, err := fmt.Fprintln(w, h.Title, "(empty)")
		return err
	}
	var max float64
	for _, row := range h.Values {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	rowW := 0
	for _, l := range h.RowLabels {
		if len(l) > rowW {
			rowW = len(l)
		}
	}
	if h.Title != "" {
		fmt.Fprintf(w, "%s\n", h.Title)
	}
	// Column header, vertical initials (first 4 chars).
	fmt.Fprintf(w, "%s  ", strings.Repeat(" ", rowW))
	for _, c := range h.ColLabels {
		if len(c) > 4 {
			c = c[:4]
		}
		fmt.Fprintf(w, "%-5s", c)
	}
	fmt.Fprintln(w)
	for i, row := range h.Values {
		label := ""
		if i < len(h.RowLabels) {
			label = h.RowLabels[i]
		}
		fmt.Fprintf(w, "%s  ", pad(label, rowW))
		for _, v := range row {
			idx := 0
			if max > 0 {
				idx = int(v / max * float64(len(shades)-1))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			fmt.Fprintf(w, "%-5s", strings.Repeat(shades[idx], 3))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "scale: '%s' = 0 .. '%s' = %.3f\n", shades[0], shades[len(shades)-1], max)
	return nil
}

// String renders the heatmap to a string.
func (h *Heatmap) String() string {
	var b strings.Builder
	_ = h.Render(&b)
	return b.String()
}

// BarChart renders labeled signed values as horizontal bars around a
// zero axis — the stand-in for Fig 4's Z-score chart.
type BarChart struct {
	Title string
	// Labels and Values are parallel.
	Labels []string
	Values []float64
	// Width is the half-width of the bar area in characters (default 30).
	Width int
}

// Render writes the chart.
func (b *BarChart) Render(w io.Writer) error {
	width := b.Width
	if width <= 0 {
		width = 30
	}
	var max float64
	for _, v := range b.Values {
		if a := abs(v); a > max {
			max = a
		}
	}
	if max == 0 {
		max = 1
	}
	labelW := 0
	for _, l := range b.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	if b.Title != "" {
		fmt.Fprintf(w, "%s\n", b.Title)
	}
	for i, v := range b.Values {
		label := ""
		if i < len(b.Labels) {
			label = b.Labels[i]
		}
		n := int(abs(v) / max * float64(width))
		var left, right string
		if v < 0 {
			left = strings.Repeat(" ", width-n) + strings.Repeat("#", n)
			right = strings.Repeat(" ", width)
		} else {
			left = strings.Repeat(" ", width)
			right = strings.Repeat("#", n) + strings.Repeat(" ", width-n)
		}
		fmt.Fprintf(w, "%s  %s|%s  %+.1f\n", pad(label, labelW), left, right, v)
	}
	return nil
}

// String renders the chart to a string.
func (b *BarChart) String() string {
	var sb strings.Builder
	_ = b.Render(&sb)
	return sb.String()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
