package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Table 1. Test", "Region", "Recipes", "Mean")
	tbl.AddRow("Italy", 7504, 9.123456)
	tbl.AddRow("Korea", 301, 8.0)
	out := tbl.String()
	if !strings.Contains(out, "Table 1. Test") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "Italy") || !strings.Contains(out, "7504") {
		t.Fatalf("row content missing:\n%s", out)
	}
	if !strings.Contains(out, "9.123") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and row share the offset of column 2.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "Recipes") > len(row) {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x", 1)
	tbl.AddRow("y,z", 2) // embedded comma must be quoted
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "a,b") || !strings.Contains(got, "\"y,z\",2") {
		t.Fatalf("CSV = %q", got)
	}
}

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		Title:     "Fig 2",
		RowLabels: []string{"ITA", "FRA"},
		ColLabels: []string{"Vegetable", "Dairy"},
		Values:    [][]float64{{0.5, 0.1}, {0.2, 0.6}},
	}
	out := h.String()
	if !strings.Contains(out, "Fig 2") || !strings.Contains(out, "ITA") {
		t.Fatalf("heatmap missing labels:\n%s", out)
	}
	if !strings.Contains(out, "Vege") {
		t.Fatalf("column labels should be truncated to 4 chars:\n%s", out)
	}
	if !strings.Contains(out, "@") {
		t.Fatalf("max cell should use the darkest shade:\n%s", out)
	}
	if !strings.Contains(out, "scale:") {
		t.Fatal("scale legend missing")
	}
}

func TestHeatmapEmpty(t *testing.T) {
	h := &Heatmap{Title: "empty"}
	if out := h.String(); !strings.Contains(out, "empty") {
		t.Fatalf("empty heatmap: %q", out)
	}
}

func TestBarChart(t *testing.T) {
	b := &BarChart{
		Title:  "Fig 4",
		Labels: []string{"ITA", "SCND"},
		Values: []float64{40, -20},
		Width:  10,
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines:\n%s", out)
	}
	ita, scnd := lines[1], lines[2]
	// Positive bar right of axis, negative left.
	if !strings.Contains(ita, "|##########") {
		t.Fatalf("ITA should be a full right bar:\n%s", out)
	}
	if !strings.Contains(scnd, "#####|") {
		t.Fatalf("SCND should be a half left bar:\n%s", out)
	}
	if !strings.Contains(ita, "+40.0") || !strings.Contains(scnd, "-20.0") {
		t.Fatalf("values missing:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	b := &BarChart{Labels: []string{"x"}, Values: []float64{0}}
	out := b.String()
	if !strings.Contains(out, "+0.0") {
		t.Fatalf("zero chart:\n%s", out)
	}
}
