package synth

import (
	"math"
	"testing"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/rng"
	"culinary/internal/stats"
)

var (
	testCatalog  *flavor.Catalog
	testAnalyzer *pairing.Analyzer
	testStore    *recipedb.Store // shared small corpus, built once
)

func init() {
	var err error
	testCatalog, err = flavor.Build(flavor.DefaultConfig())
	if err != nil {
		panic(err)
	}
	testAnalyzer = pairing.NewAnalyzer(testCatalog)
	testStore, err = Generate(testAnalyzer, TestConfig())
	if err != nil {
		panic(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testAnalyzer, TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != testStore.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), testStore.Len())
	}
	for i := 0; i < a.Len(); i += 97 { // sample stride for speed
		ra, rb := a.Recipe(i), testStore.Recipe(i)
		if ra.Name != rb.Name || ra.Region != rb.Region || len(ra.Ingredients) != len(rb.Ingredients) {
			t.Fatalf("recipe %d differs between identical seeds", i)
		}
		for j := range ra.Ingredients {
			if ra.Ingredients[j] != rb.Ingredients[j] {
				t.Fatalf("recipe %d ingredient %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	cfg := TestConfig()
	cfg.Seed++
	b, err := Generate(testAnalyzer, cfg)
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for i := 0; i < b.Len() && i < testStore.Len(); i += 53 {
		ra, rb := testStore.Recipe(i), b.Recipe(i)
		if len(ra.Ingredients) != len(rb.Ingredients) {
			differ = true
			break
		}
		for j := range ra.Ingredients {
			if ra.Ingredients[j] != rb.Ingredients[j] {
				differ = true
			}
		}
	}
	if !differ {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestRegionRecipeCountsScale(t *testing.T) {
	cfg := TestConfig()
	for _, r := range recipedb.AllRegions() {
		want := int(math.Round(float64(r.PaperRecipeCount()) * cfg.Scale))
		if want < 4 {
			want = 4
		}
		got := testStore.RegionLen(r)
		if got != want {
			t.Errorf("%s: %d recipes, want %d", r.Code(), got, want)
		}
	}
}

func TestRecipeSizesBounded(t *testing.T) {
	cfg := TestConfig()
	h := stats.NewHistogram()
	for i := 0; i < testStore.Len(); i++ {
		sz := testStore.Recipe(i).Size()
		if sz < cfg.MinSize || sz > cfg.MaxSize {
			t.Fatalf("recipe %d size %d outside [%d,%d]", i, sz, cfg.MinSize, cfg.MaxSize)
		}
		h.Add(sz)
	}
	// Mean near the paper's ≈9.
	if m := h.Mean(); math.Abs(m-cfg.MeanSize) > 1.0 {
		t.Fatalf("mean size %.2f far from %.1f", m, cfg.MeanSize)
	}
}

func TestNoDuplicateIngredientsWithinRecipe(t *testing.T) {
	for i := 0; i < testStore.Len(); i++ {
		r := testStore.Recipe(i)
		seen := map[flavor.ID]bool{}
		for _, id := range r.Ingredients {
			if seen[id] {
				t.Fatalf("recipe %d has duplicate %q", i, testCatalog.Ingredient(id).Name)
			}
			seen[id] = true
		}
	}
}

func TestUniqueIngredientCoverage(t *testing.T) {
	// Per-region unique ingredients should be a sizeable fraction of the
	// Table 1 target even at 5% corpus scale, and never exceed it.
	for _, r := range []recipedb.Region{recipedb.Italy, recipedb.USA, recipedb.France} {
		c := testStore.BuildCuisine(r)
		target := r.PaperIngredientCount()
		if target > testCatalog.Len() {
			target = testCatalog.Len()
		}
		got := c.NumUniqueIngredients()
		if got > target {
			t.Errorf("%s: %d unique exceeds pool %d", r.Code(), got, target)
		}
		if float64(got) < 0.5*float64(target) {
			t.Errorf("%s: only %d of %d unique ingredients at 5%% scale", r.Code(), got, target)
		}
	}
}

func TestRankFrequencyScaling(t *testing.T) {
	// Fig 3b: popularity is heavy-tailed — the top 10% of ingredients
	// should account for well over half of all use.
	c := testStore.BuildCuisine(recipedb.USA)
	shares := stats.CumulativeShare(c.FrequencyVector())
	k := len(shares) / 10
	if k == 0 {
		t.Skip("cuisine too small")
	}
	if shares[k-1] < 0.4 {
		t.Fatalf("top 10%% of ingredients cover only %.2f of uses; no scaling", shares[k-1])
	}
	// And the distribution must not be a point mass either.
	if shares[0] > 0.5 {
		t.Fatalf("single ingredient covers %.2f of uses", shares[0])
	}
}

func TestPairingDirectionsMatchPaper(t *testing.T) {
	// The core calibration: every major region must deviate from its
	// Random control in the direction the paper reports in Fig 4.
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, r := range recipedb.MajorRegions() {
		c := testStore.BuildCuisine(r)
		res, err := pairing.Compare(testAnalyzer, testStore, c, pairing.RandomModel, 4000, rng.New(uint64(r)+100))
		if err != nil {
			t.Fatalf("%s: %v", r.Code(), err)
		}
		wantSign := r.PairingSign()
		gotSign := 0
		if res.Z > 0 {
			gotSign = 1
		} else if res.Z < 0 {
			gotSign = -1
		}
		if gotSign != wantSign {
			t.Errorf("%s: Z=%.1f, want sign %+d", r.Code(), res.Z, wantSign)
		}
	}
}

func TestFrequencyModelTracksCuisineCategoryDoesNot(t *testing.T) {
	// Fig 4's second claim on a positive and a negative cuisine.
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, r := range []recipedb.Region{recipedb.Italy, recipedb.Japan} {
		c := testStore.BuildCuisine(r)
		obs, _ := testAnalyzer.CuisineScore(testStore, c)
		src := rng.New(uint64(r) + 500)
		rs, err := pairing.NewNullSampler(testAnalyzer, testStore, c, pairing.RandomModel, src.Split(0))
		if err != nil {
			t.Fatal(err)
		}
		rm, _, _ := rs.NullMoments(6000)
		freq, err := pairing.ModelScore(testAnalyzer, testStore, c, pairing.FrequencyModel, 6000, src.Split(1))
		if err != nil {
			t.Fatal(err)
		}
		cat, err := pairing.ModelScore(testAnalyzer, testStore, c, pairing.CategoryModel, 6000, src.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		// Frequency model must close most of the gap to the observed
		// cuisine; the category model must close clearly less.
		gapFull := math.Abs(obs - rm)
		gapFreq := math.Abs(obs - freq)
		gapCat := math.Abs(obs - cat)
		if gapFreq > 0.5*gapFull {
			t.Errorf("%s: frequency model closes too little: obs=%.2f rand=%.2f freq=%.2f",
				r.Code(), obs, rm, freq)
		}
		if gapCat < gapFreq {
			t.Errorf("%s: category model (gap %.2f) closer than frequency (gap %.2f)",
				r.Code(), gapCat, gapFreq)
		}
	}
}

func TestCategoryUsageSignatures(t *testing.T) {
	// Fig 2 signatures: France uses dairy more than vegetables; the
	// Indian Subcontinent is spice-forward.
	fra := testStore.CategoryUsage(recipedb.France)
	if fra[flavor.Dairy] <= fra[flavor.Vegetable] {
		t.Errorf("France: dairy %.3f should exceed vegetable %.3f",
			fra[flavor.Dairy], fra[flavor.Vegetable])
	}
	insc := testStore.CategoryUsage(recipedb.IndianSubcontinent)
	world := testStore.CategoryUsage(recipedb.World)
	if insc[flavor.Spice] <= world[flavor.Spice] {
		t.Errorf("INSC spice %.3f should exceed world %.3f",
			insc[flavor.Spice], world[flavor.Spice])
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.Scale = 5 },
		func(c *Config) { c.MinSize = 1 },
		func(c *Config) { c.MaxSize = 2 },
		func(c *Config) { c.MeanSize = 1 },
		func(c *Config) { c.MeanSize = 99 },
		func(c *Config) { c.CopyProb = -0.1 },
		func(c *Config) { c.CopyProb = 1.1 },
		func(c *Config) { c.MutationRate = 0 },
		func(c *Config) { c.Candidates = 1 },
		func(c *Config) { c.ExploreProb = -1 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := Generate(testAnalyzer, cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSourceAssignment(t *testing.T) {
	counts := testStore.SourceCounts()
	for s, n := range counts {
		if n == 0 {
			t.Errorf("source %s unused", s)
		}
	}
	// TarlaDalal should be concentrated in the Indian Subcontinent.
	var tdINSC, tdAll int
	testStore.ForEachInRegion(recipedb.World, func(r *recipedb.Recipe) {
		if r.Source == recipedb.TarlaDalal {
			tdAll++
			if r.Region == recipedb.IndianSubcontinent {
				tdINSC++
			}
		}
	})
	if tdAll == 0 || float64(tdINSC)/float64(tdAll) < 0.5 {
		t.Errorf("TarlaDalal should be mostly INSC: %d of %d", tdINSC, tdAll)
	}
}

func TestCategoryWeightPositive(t *testing.T) {
	for _, r := range recipedb.AllRegions() {
		for _, cat := range flavor.AllCategories() {
			if w := CategoryWeight(r, cat); w <= 0 {
				t.Fatalf("weight(%s,%s) = %v", r.Code(), cat, w)
			}
		}
	}
	// Boost applies: France dairy weight above baseline.
	if CategoryWeight(recipedb.France, flavor.Dairy) <= CategoryWeight(recipedb.Italy, flavor.Dairy) {
		t.Error("France dairy boost missing")
	}
}

func TestMinorRegionsToggle(t *testing.T) {
	cfg := TestConfig()
	cfg.IncludeMinorRegions = false
	store, err := Generate(testAnalyzer, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recipedb.AllRegions() {
		if r.Minor() && store.RegionLen(r) != 0 {
			t.Errorf("minor region %s generated despite toggle", r.Code())
		}
	}
}
