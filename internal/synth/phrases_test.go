package synth

import (
	"strings"
	"testing"

	"culinary/internal/flavor"
)

func TestPhraseSynthesizerDeterministic(t *testing.T) {
	a := NewPhraseSynthesizer(testCatalog, DefaultPhraseConfig())
	b := NewPhraseSynthesizer(testCatalog, DefaultPhraseConfig())
	ba := a.RenderBatch(100)
	bb := b.RenderBatch(100)
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("phrase %d differs: %q vs %q", i, ba[i].Phrase, bb[i].Phrase)
		}
	}
}

func TestRenderCarriesTruth(t *testing.T) {
	ps := NewPhraseSynthesizer(testCatalog, DefaultPhraseConfig())
	id, _ := testCatalog.Lookup("tomato")
	for i := 0; i < 50; i++ {
		lp := ps.Render(id)
		if lp.Truth != id {
			t.Fatalf("truth label wrong: %+v", lp)
		}
		if lp.Phrase == "" {
			t.Fatal("empty phrase")
		}
	}
}

func TestRenderNoiseVariety(t *testing.T) {
	ps := NewPhraseSynthesizer(testCatalog, DefaultPhraseConfig())
	id, _ := testCatalog.Lookup("tomato")
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[ps.Render(id).Phrase] = true
	}
	if len(seen) < 20 {
		t.Fatalf("only %d distinct phrases out of 200 renders", len(seen))
	}
}

func TestZeroNoiseRendersCanonicalName(t *testing.T) {
	cfg := PhraseConfig{Seed: 1} // all probabilities zero
	ps := NewPhraseSynthesizer(testCatalog, cfg)
	id, _ := testCatalog.Lookup("basil")
	lp := ps.Render(id)
	if lp.Phrase != "basil" {
		t.Fatalf("zero-noise phrase = %q", lp.Phrase)
	}
}

func TestPluralizeLast(t *testing.T) {
	cases := []struct{ in, want string }{
		{"tomato", "tomatoes"},
		{"cherry", "cherries"},
		{"radish", "radishes"},
		{"green bean", "green beans"},
		{"box", "boxes"},
		{"bay leaf", "bay leafs"}, // naive pluralizer; singularizer still recovers "leaf"
		{"egg", "eggs"},
	}
	for _, tc := range cases {
		if got := pluralizeLast(tc.in); got != tc.want {
			t.Errorf("pluralizeLast(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRenderBatchCoversManyIngredients(t *testing.T) {
	ps := NewPhraseSynthesizer(testCatalog, DefaultPhraseConfig())
	batch := ps.RenderBatch(1000)
	if len(batch) != 1000 {
		t.Fatalf("batch size %d", len(batch))
	}
	distinct := map[flavor.ID]bool{}
	for _, lp := range batch {
		distinct[lp.Truth] = true
		if testCatalog.Ingredient(lp.Truth).Compound {
			t.Fatalf("batch rendered compound ingredient %q", testCatalog.Ingredient(lp.Truth).Name)
		}
	}
	if len(distinct) < 200 {
		t.Fatalf("batch covers only %d distinct ingredients", len(distinct))
	}
}

func TestTypoChangesOneCharacter(t *testing.T) {
	cfg := DefaultPhraseConfig()
	cfg.TypoProb = 1
	cfg.QuantityProb, cfg.PrepProb, cfg.AdjectiveProb, cfg.PluralProb, cfg.SynonymProb = 0, 0, 0, 0, 0
	ps := NewPhraseSynthesizer(testCatalog, cfg)
	id, _ := testCatalog.Lookup("saffron")
	diffTotal := 0
	for i := 0; i < 20; i++ {
		lp := ps.Render(id)
		if len(lp.Phrase) != len("saffron") {
			t.Fatalf("typo changed length: %q", lp.Phrase)
		}
		diff := 0
		for j := range lp.Phrase {
			if lp.Phrase[j] != "saffron"[j] {
				diff++
			}
		}
		if diff > 1 {
			t.Fatalf("typo changed %d characters: %q", diff, lp.Phrase)
		}
		diffTotal += diff
	}
	if diffTotal == 0 {
		t.Fatal("TypoProb=1 produced no typos")
	}
	_ = strings.ToLower("")
}
