// Package synth generates the synthetic CulinaryDB corpus.
//
// The real corpus (45,772 scraped recipes) is not redistributable, so
// the corpus is produced by the copy-mutate culinary evolution model the
// paper itself cites as explaining the observed patterns (Jain & Bagler,
// "Culinary evolution models for Indian cuisines", Physica A 2018),
// extended with a per-region flavor-affinity bias:
//
//   - New recipes either copy an existing recipe and mutate a fraction
//     of its ingredients, or are composed fresh. Both paths select
//     ingredients with probability proportional to current usage
//     (preferential attachment), which yields the heavy-tailed
//     rank-frequency popularity curves of Fig 3b.
//   - Ingredient selection is additionally biased by exp(β·s̃), where s̃
//     is the standardized mean shared-compound count between a candidate
//     and the partial recipe, and β is the region's pairing bias
//     (positive for the paper's 16 uniform-pairing regions, negative for
//     its 6 contrasting regions). This is the mechanism that makes each
//     cuisine deviate from its randomized control in the direction
//     reported in Fig 4.
//   - Region ingredient pools are drawn with region-specific category
//     preferences (France/British Isles/Scandinavia dairy-forward,
//     Indian Subcontinent/Africa/Middle East/Caribbean spice-forward,
//     …), reproducing the Fig 2 category heatmap structure.
//
// Recipe sizes follow a shifted Poisson distribution with mean ≈ 9
// bounded to [3, 28]: the bounded, thin-tailed distribution of Fig 3a.
package synth

import (
	"fmt"
	"math"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/rng"
)

// Config controls corpus generation.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Scale multiplies every region's Table 1 recipe count; 1.0
	// regenerates the full 45,772-recipe corpus, smaller values produce
	// proportionally smaller corpora for tests.
	Scale float64
	// MeanSize is the target mean recipe size (the paper observes ≈ 9).
	MeanSize float64
	// MinSize and MaxSize bound recipe sizes.
	MinSize, MaxSize int
	// CopyProb is the probability a new recipe is a copy-mutate of an
	// existing recipe rather than a fresh composition.
	CopyProb float64
	// MutationRate is the fraction of a copied recipe's slots that are
	// re-drawn.
	MutationRate float64
	// Candidates is the number of candidate ingredients scored per slot.
	Candidates int
	// AffinityScale multiplies each region's pairing bias β.
	AffinityScale float64
	// ExploreProb is the probability that a candidate is drawn uniformly
	// from the pool instead of by usage, keeping tail ingredients in
	// circulation so regional unique-ingredient counts stay near their
	// Table 1 targets.
	ExploreProb float64
	// IncludeMinorRegions adds the four aggregate-only regions
	// (Portugal, Belgium, Central America, Netherlands).
	IncludeMinorRegions bool
}

// DefaultConfig returns the full-corpus calibration.
func DefaultConfig() Config {
	return Config{
		Seed:                20180416,
		Scale:               1.0,
		MeanSize:            9,
		MinSize:             3,
		MaxSize:             28,
		CopyProb:            0.8,
		MutationRate:        0.3,
		Candidates:          16,
		AffinityScale:       0.5,
		ExploreProb:         0.15,
		IncludeMinorRegions: true,
	}
}

// TestConfig returns a reduced corpus (≈ 5% scale) for fast tests.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.12
	return cfg
}

func (cfg Config) validate() error {
	switch {
	case cfg.Scale <= 0 || cfg.Scale > 4:
		return fmt.Errorf("synth: Scale %g outside (0,4]", cfg.Scale)
	case cfg.MinSize < 2 || cfg.MaxSize < cfg.MinSize:
		return fmt.Errorf("synth: size bounds [%d,%d] invalid", cfg.MinSize, cfg.MaxSize)
	case cfg.MeanSize < float64(cfg.MinSize) || cfg.MeanSize > float64(cfg.MaxSize):
		return fmt.Errorf("synth: MeanSize %g outside bounds", cfg.MeanSize)
	case cfg.CopyProb < 0 || cfg.CopyProb > 1:
		return fmt.Errorf("synth: CopyProb %g outside [0,1]", cfg.CopyProb)
	case cfg.MutationRate <= 0 || cfg.MutationRate > 1:
		return fmt.Errorf("synth: MutationRate %g outside (0,1]", cfg.MutationRate)
	case cfg.Candidates < 2:
		return fmt.Errorf("synth: Candidates %d too small", cfg.Candidates)
	case cfg.ExploreProb < 0 || cfg.ExploreProb > 1:
		return fmt.Errorf("synth: ExploreProb %g outside [0,1]", cfg.ExploreProb)
	}
	return nil
}

// Generate builds a complete synthetic corpus over the catalog. The
// supplied analyzer provides the precomputed shared-compound matrix; the
// generator's affinity bias uses the same statistic as the downstream
// pairing analysis, which is exactly the paper's premise (recipes
// evolved under flavor-affinity pressure).
func Generate(analyzer *pairing.Analyzer, cfg Config) (*recipedb.Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	catalog := analyzer.Catalog()
	store := recipedb.NewStore(catalog)
	master := rng.New(cfg.Seed)

	regions := recipedb.MajorRegions()
	if cfg.IncludeMinorRegions {
		regions = recipedb.AllRegions()
	}
	for _, region := range regions {
		if err := generateCalibratedRegion(analyzer, store, region, cfg, master.Split(uint64(region)+1)); err != nil {
			return nil, fmt.Errorf("synth: region %s: %w", region.Code(), err)
		}
	}
	return store, nil
}

// calibration constants for generateCalibratedRegion.
const (
	// calibrationAttempts bounds the regenerate-with-stronger-β loop.
	calibrationAttempts = 6
	// calibrationNullDraws is the Random-control sample used to check a
	// candidate region's pairing direction during generation.
	calibrationNullDraws = 4000
	// calibrationMinZ is the minimum |Z| accepted for major regions; the
	// paper reports every cuisine as significantly non-random.
	calibrationMinZ = 5.0
)

// generateCalibratedRegion generates a region and verifies that its
// food-pairing deviation from the Random control has the direction the
// paper reports (Fig 4). Popularity dynamics can push a weakly biased
// cuisine the wrong way, especially in small corpora; when that happens
// the region is regenerated with a stronger flavor-affinity bias. The
// loop is deterministic: attempt k uses the seed stream Split(k).
func generateCalibratedRegion(analyzer *pairing.Analyzer, store *recipedb.Store, region recipedb.Region, cfg Config, src *rng.Source) error {
	wantSign := region.PairingSign()
	scale := cfg.AffinityScale
	for attempt := 0; attempt < calibrationAttempts; attempt++ {
		attemptCfg := cfg
		attemptCfg.AffinityScale = scale
		trial := recipedb.NewStore(analyzer.Catalog())
		if err := generateRegion(analyzer, trial, region, attemptCfg, src.Split(uint64(attempt))); err != nil {
			return err
		}
		if wantSign == 0 {
			return copyRegion(trial, store, region)
		}
		cuisine := trial.BuildCuisine(region)
		res, err := pairing.Compare(analyzer, trial, cuisine, pairing.RandomModel,
			calibrationNullDraws, src.Split(1000+uint64(attempt)))
		if err != nil {
			return err
		}
		if (wantSign > 0 && res.Z >= calibrationMinZ) || (wantSign < 0 && res.Z <= -calibrationMinZ) {
			return copyRegion(trial, store, region)
		}
		scale *= 1.7
	}
	return fmt.Errorf("synth: region %s failed pairing-direction calibration after %d attempts",
		region.Code(), calibrationAttempts)
}

// copyRegion moves every recipe of the region from a trial store into
// the destination store.
func copyRegion(from, to *recipedb.Store, region recipedb.Region) error {
	var firstErr error
	from.ForEachInRegion(region, func(r *recipedb.Recipe) {
		if firstErr != nil {
			return
		}
		if _, err := to.Add(r.Name, r.Region, r.Source, r.Ingredients); err != nil {
			firstErr = err
		}
	})
	return firstErr
}

// regionState carries the evolving cuisine during generation.
type regionState struct {
	analyzer *pairing.Analyzer
	cfg      Config
	region   recipedb.Region
	src      *rng.Source
	pool     []flavor.ID
	poolIdx  map[flavor.ID]int
	usage    []float64 // usage[i] = 1 + times pool[i] has been used
	catw     []float64 // per-pool-member category fitness multiplier
	// standardization constants for shared-compound counts in the pool
	shareMean, shareStd float64
	recipes             [][]flavor.ID
	beta                float64
	usageMax            float64
}

func generateRegion(analyzer *pairing.Analyzer, store *recipedb.Store, region recipedb.Region, cfg Config, src *rng.Source) error {
	target := int(math.Round(float64(region.PaperRecipeCount()) * cfg.Scale))
	if target < 4 {
		target = 4
	}
	st := &regionState{
		analyzer: analyzer,
		cfg:      cfg,
		region:   region,
		src:      src,
		beta:     region.PairingBias() * cfg.AffinityScale,
	}
	st.buildPool()
	st.calibrateShares()

	for len(st.recipes) < target {
		var recipe []flavor.ID
		if len(st.recipes) > 8 && src.Float64() < cfg.CopyProb {
			recipe = st.copyMutate()
		} else {
			recipe = st.freshRecipe()
		}
		st.recipes = append(st.recipes, recipe)
		for _, id := range recipe {
			i := st.poolIdx[id]
			st.usage[i]++
			if w := st.usage[i] * st.catw[i]; w > st.usageMax {
				st.usageMax = w
			}
		}
	}

	for i, recipe := range st.recipes {
		name := st.recipeName(recipe, i)
		source := st.pickSource()
		if _, err := store.Add(name, region, source, recipe); err != nil {
			return err
		}
	}
	return nil
}

// buildPool selects the region's ingredient pool with category-weighted
// sampling sized to the Table 1 unique-ingredient count.
func (st *regionState) buildPool() {
	catalog := st.analyzer.Catalog()
	targetSize := st.region.PaperIngredientCount()
	if targetSize > catalog.Len() {
		targetSize = catalog.Len()
	}
	if targetSize < 20 {
		targetSize = 20
	}
	weights := make([]float64, catalog.Len())
	for i := 0; i < catalog.Len(); i++ {
		ing := catalog.Ingredient(flavor.ID(i))
		weights[i] = CategoryWeight(st.region, ing.Category)
	}
	w, err := rng.NewWeighted(weights)
	if err != nil {
		panic("synth: category weights degenerate: " + err.Error())
	}
	chosen := w.SampleDistinct(st.src, targetSize)
	st.pool = make([]flavor.ID, len(chosen))
	st.poolIdx = make(map[flavor.ID]int, len(chosen))
	st.usage = make([]float64, len(chosen))
	st.catw = make([]float64, len(chosen))
	st.usageMax = 0
	for i, idx := range chosen {
		st.pool[i] = flavor.ID(idx)
		st.poolIdx[flavor.ID(idx)] = i
		st.usage[i] = 1 // Laplace prior so every pool member is reachable
		// Category fitness shapes usage incidence (Fig 2): slots prefer
		// members of regionally favored categories, and preferential
		// attachment compounds the advantage.
		cw := CategoryWeight(st.region, catalog.Ingredient(flavor.ID(idx)).Category)
		st.catw[i] = cw * cw // squared to sharpen regional signatures
		if st.catw[i] > st.usageMax {
			st.usageMax = st.catw[i]
		}
	}
}

// calibrateShares estimates the mean and standard deviation of pairwise
// shared-compound counts within the pool, used to standardize affinity.
func (st *regionState) calibrateShares() {
	const samples = 2000
	var sum, sumsq float64
	n := 0
	for i := 0; i < samples; i++ {
		a := st.pool[st.src.Intn(len(st.pool))]
		b := st.pool[st.src.Intn(len(st.pool))]
		if a == b {
			continue
		}
		s := float64(st.analyzer.Shared(a, b))
		sum += s
		sumsq += s * s
		n++
	}
	if n < 2 {
		st.shareMean, st.shareStd = 0, 1
		return
	}
	st.shareMean = sum / float64(n)
	variance := sumsq/float64(n) - st.shareMean*st.shareMean
	if variance <= 0 {
		st.shareStd = 1
	} else {
		st.shareStd = math.Sqrt(variance)
	}
}

// sampleSize draws a recipe size: MinSize + Poisson(MeanSize - MinSize),
// clamped above.
func (st *regionState) sampleSize() int {
	sz := st.cfg.MinSize + st.src.Poisson(st.cfg.MeanSize-float64(st.cfg.MinSize))
	if sz > st.cfg.MaxSize {
		sz = st.cfg.MaxSize
	}
	if sz > len(st.pool) {
		sz = len(st.pool)
	}
	return sz
}

// freshRecipe composes a recipe slot by slot with affinity-biased
// preferential attachment.
func (st *regionState) freshRecipe() []flavor.ID {
	size := st.sampleSize()
	recipe := make([]flavor.ID, 0, size)
	member := make(map[flavor.ID]struct{}, size)
	for len(recipe) < size {
		id := st.selectIngredient(recipe, member)
		recipe = append(recipe, id)
		member[id] = struct{}{}
	}
	return recipe
}

// copyMutate copies a uniformly chosen existing recipe and re-draws a
// MutationRate fraction of its slots (at least one).
func (st *regionState) copyMutate() []flavor.ID {
	tmpl := st.recipes[st.src.Intn(len(st.recipes))]
	recipe := append([]flavor.ID(nil), tmpl...)
	member := make(map[flavor.ID]struct{}, len(recipe))
	for _, id := range recipe {
		member[id] = struct{}{}
	}
	mutations := int(math.Ceil(st.cfg.MutationRate * float64(len(recipe))))
	for m := 0; m < mutations; m++ {
		slot := st.src.Intn(len(recipe))
		old := recipe[slot]
		delete(member, old)
		// Remove the slot from the affinity context, then redraw.
		rest := make([]flavor.ID, 0, len(recipe)-1)
		for i, id := range recipe {
			if i != slot {
				rest = append(rest, id)
			}
		}
		id := st.selectIngredient(rest, member)
		recipe[slot] = id
		member[id] = struct{}{}
	}
	return recipe
}

// selectIngredient draws Candidates pool members with probability
// proportional to usage (preferential attachment), scores each by the
// standardized mean shared-compound count against the partial recipe,
// and picks via softmax with inverse temperature β. With β = 0 this
// reduces to pure preferential attachment; β > 0 favors flavor-similar
// candidates (uniform pairing), β < 0 flavor-dissimilar (contrasting).
func (st *regionState) selectIngredient(partial []flavor.ID, member map[flavor.ID]struct{}) flavor.ID {
	type cand struct {
		id flavor.ID
		w  float64
	}
	cands := make([]cand, 0, st.cfg.Candidates)
	attempts := 0
	for len(cands) < st.cfg.Candidates && attempts < st.cfg.Candidates*20 {
		attempts++
		var idx int
		if st.src.Float64() < st.cfg.ExploreProb {
			idx = st.src.Intn(len(st.pool))
		} else {
			idx = st.sampleByUsage()
		}
		id := st.pool[idx]
		if _, dup := member[id]; dup {
			continue
		}
		cands = append(cands, cand{id: id})
	}
	if len(cands) == 0 {
		// Pool nearly exhausted by this recipe: linear scan.
		for _, id := range st.pool {
			if _, dup := member[id]; !dup {
				return id
			}
		}
		panic("synth: recipe exhausted the ingredient pool")
	}
	if len(partial) == 0 || st.beta == 0 {
		return cands[st.src.Intn(len(cands))].id
	}
	// Softmax over standardized affinity.
	var maxW float64 = math.Inf(-1)
	for i := range cands {
		var total float64
		for _, other := range partial {
			total += float64(st.analyzer.Shared(cands[i].id, other))
		}
		mean := total / float64(len(partial))
		std := (mean - st.shareMean) / st.shareStd
		// Clamp so a single extreme pair cannot dominate the softmax.
		if std > 3 {
			std = 3
		} else if std < -3 {
			std = -3
		}
		cands[i].w = st.beta * std
		if cands[i].w > maxW {
			maxW = cands[i].w
		}
	}
	var z float64
	for i := range cands {
		cands[i].w = math.Exp(cands[i].w - maxW)
		z += cands[i].w
	}
	r := st.src.Float64() * z
	for i := range cands {
		r -= cands[i].w
		if r <= 0 {
			return cands[i].id
		}
	}
	return cands[len(cands)-1].id
}

// sampleByUsage draws a pool index proportionally to usage × category
// fitness by rejection against the incrementally maintained maximum
// (weights change every recipe, so an alias table would need constant
// rebuilding).
func (st *regionState) sampleByUsage() int {
	for {
		i := st.src.Intn(len(st.usage))
		if st.src.Float64()*st.usageMax <= st.usage[i]*st.catw[i] {
			return i
		}
	}
}

// dishWords provides recipe-name suffixes.
var dishWords = []string{
	"stew", "soup", "salad", "curry", "roast", "bake", "pie",
	"casserole", "stir fry", "braise", "gratin", "skillet", "bowl",
	"tart", "fritter", "dumpling", "chowder", "ragout", "medley",
}

// recipeName synthesizes a display name from the recipe's first
// ingredients.
func (st *regionState) recipeName(recipe []flavor.ID, idx int) string {
	catalog := st.analyzer.Catalog()
	a := catalog.Ingredient(recipe[0]).Name
	b := ""
	if len(recipe) > 1 {
		b = catalog.Ingredient(recipe[1]).Name + " "
	}
	dish := dishWords[st.src.Intn(len(dishWords))]
	return fmt.Sprintf("%s %s%s #%d", a, b, dish, idx)
}

// pickSource assigns a provenance site. TarlaDalal (an Indian recipe
// site) dominates the Indian Subcontinent; other regions mix the three
// general sites with the paper's overall proportions.
func (st *regionState) pickSource() recipedb.Source {
	if st.region == recipedb.IndianSubcontinent && st.src.Float64() < 0.64 {
		return recipedb.TarlaDalal
	}
	r := st.src.Float64()
	switch {
	case r < 0.375:
		return recipedb.AllRecipes
	case r < 0.745:
		return recipedb.FoodNetwork
	default:
		return recipedb.Epicurious
	}
}

// SingleRegionConfig parameterizes GenerateSingleRegion.
type SingleRegionConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// Recipes is the number of recipes to generate.
	Recipes int
	// Beta is the raw flavor-affinity bias (no region calibration): the
	// independent variable of the evolution-model sweep.
	Beta float64
}

// GenerateSingleRegion generates one uncalibrated cuisine with an
// explicit flavor-affinity bias β, used by the copy-mutate evolution
// sweep (Ext-3) to show that β spans the uniform-to-contrasting pairing
// spectrum. The region parameter supplies the ingredient pool's size and
// category preferences only; its paper pairing sign is ignored.
func GenerateSingleRegion(analyzer *pairing.Analyzer, region recipedb.Region, cfg SingleRegionConfig) (*recipedb.Store, error) {
	if cfg.Recipes < 4 {
		return nil, fmt.Errorf("synth: Recipes %d too small", cfg.Recipes)
	}
	base := DefaultConfig()
	base.Seed = cfg.Seed
	store := recipedb.NewStore(analyzer.Catalog())
	src := rng.New(cfg.Seed).Split(uint64(region) + 1)
	st := &regionState{
		analyzer: analyzer,
		cfg:      base,
		region:   region,
		src:      src,
		beta:     cfg.Beta,
	}
	st.buildPool()
	st.calibrateShares()
	for len(st.recipes) < cfg.Recipes {
		var recipe []flavor.ID
		if len(st.recipes) > 8 && src.Float64() < base.CopyProb {
			recipe = st.copyMutate()
		} else {
			recipe = st.freshRecipe()
		}
		st.recipes = append(st.recipes, recipe)
		for _, id := range recipe {
			i := st.poolIdx[id]
			st.usage[i]++
			if w := st.usage[i] * st.catw[i]; w > st.usageMax {
				st.usageMax = w
			}
		}
	}
	for i, recipe := range st.recipes {
		if _, err := store.Add(st.recipeName(recipe, i), region, st.pickSource(), recipe); err != nil {
			return nil, err
		}
	}
	return store, nil
}
