package synth

import (
	"fmt"
	"strings"

	"culinary/internal/flavor"
	"culinary/internal/rng"
)

// LabeledPhrase is a synthesized noisy ingredient phrase together with
// the catalog entity it renders — ground truth for evaluating the
// aliasing pipeline of §IV.A.
type LabeledPhrase struct {
	Phrase string
	Truth  flavor.ID
}

// PhraseConfig controls phrase synthesis noise levels.
type PhraseConfig struct {
	Seed uint64
	// QuantityProb prepends an amount + unit ("2 cups").
	QuantityProb float64
	// PrepProb appends a preparation clause (", finely chopped").
	PrepProb float64
	// AdjectiveProb inserts a state adjective ("fresh").
	AdjectiveProb float64
	// PluralProb pluralizes the ingredient's final word.
	PluralProb float64
	// TypoProb introduces a single-character typo in the name.
	TypoProb float64
	// SynonymProb renders a registered synonym instead of the canonical
	// name when one exists.
	SynonymProb float64
}

// DefaultPhraseConfig mirrors the noise profile of scraped recipe sites.
func DefaultPhraseConfig() PhraseConfig {
	return PhraseConfig{
		Seed:          99,
		QuantityProb:  0.85,
		PrepProb:      0.55,
		AdjectiveProb: 0.35,
		PluralProb:    0.30,
		TypoProb:      0.04,
		SynonymProb:   0.20,
	}
}

var (
	quantities = []string{
		"1", "2", "3", "4", "1/2", "1/4", "3/4", "1 1/2", "2 1/2", "6", "8", "12",
	}
	units = []string{
		"cup", "cups", "tablespoon", "tablespoons", "teaspoon",
		"teaspoons", "ounces", "pound", "pounds", "grams", "ml",
		"cloves", "sprigs", "slices", "pieces", "cans", "bunches",
	}
	prepClauses = []string{
		"finely chopped", "roughly chopped", "diced", "minced",
		"thinly sliced", "grated", "peeled and seeded", "crushed",
		"roasted and slit", "cut into strips", "at room temperature",
		"drained and rinsed", "trimmed", "halved", "lightly beaten",
		"melted", "softened", "to taste", "for garnish", "divided",
		"or more to taste", "plus extra for serving",
	}
	adjectives = []string{
		"fresh", "large", "small", "medium", "ripe", "whole", "dried",
		"organic", "extra", "raw", "chilled", "frozen", "canned",
	}
)

// synonymsFor returns registered synonyms that resolve to id.
func synonymsFor(catalog *flavor.Catalog, id flavor.ID) []string {
	var out []string
	for _, s := range catalog.SynonymNames() {
		if sid, ok := catalog.Lookup(s); ok && sid == id {
			out = append(out, s)
		}
	}
	return out
}

// PhraseSynthesizer renders catalog ingredients into noisy phrases.
type PhraseSynthesizer struct {
	catalog *flavor.Catalog
	cfg     PhraseConfig
	src     *rng.Source
	syns    map[flavor.ID][]string
}

// NewPhraseSynthesizer builds a synthesizer over the catalog.
func NewPhraseSynthesizer(catalog *flavor.Catalog, cfg PhraseConfig) *PhraseSynthesizer {
	ps := &PhraseSynthesizer{
		catalog: catalog,
		cfg:     cfg,
		src:     rng.New(cfg.Seed),
		syns:    make(map[flavor.ID][]string),
	}
	for _, s := range catalog.SynonymNames() {
		if id, ok := catalog.Lookup(s); ok {
			ps.syns[id] = append(ps.syns[id], s)
		}
	}
	return ps
}

// Render produces one noisy phrase for the ingredient.
func (ps *PhraseSynthesizer) Render(id flavor.ID) LabeledPhrase {
	name := ps.catalog.Ingredient(id).Name
	if syns := ps.syns[id]; len(syns) > 0 && ps.src.Float64() < ps.cfg.SynonymProb {
		name = syns[ps.src.Intn(len(syns))]
	}
	if ps.src.Float64() < ps.cfg.PluralProb {
		name = pluralizeLast(name)
	}
	if ps.src.Float64() < ps.cfg.TypoProb {
		name = ps.typo(name)
	}
	var b strings.Builder
	if ps.src.Float64() < ps.cfg.QuantityProb {
		fmt.Fprintf(&b, "%s %s ", quantities[ps.src.Intn(len(quantities))], units[ps.src.Intn(len(units))])
	}
	if ps.src.Float64() < ps.cfg.AdjectiveProb {
		b.WriteString(adjectives[ps.src.Intn(len(adjectives))])
		b.WriteByte(' ')
	}
	b.WriteString(name)
	if ps.src.Float64() < ps.cfg.PrepProb {
		b.WriteString(", ")
		b.WriteString(prepClauses[ps.src.Intn(len(prepClauses))])
	}
	return LabeledPhrase{Phrase: b.String(), Truth: id}
}

// RenderBatch produces n labeled phrases over ingredients drawn
// uniformly from the catalog's profiled basic ingredients.
func (ps *PhraseSynthesizer) RenderBatch(n int) []LabeledPhrase {
	var pool []flavor.ID
	for i := 0; i < ps.catalog.Len(); i++ {
		ing := ps.catalog.Ingredient(flavor.ID(i))
		if !ing.Compound {
			pool = append(pool, ing.ID)
		}
	}
	out := make([]LabeledPhrase, n)
	for i := range out {
		out[i] = ps.Render(pool[ps.src.Intn(len(pool))])
	}
	return out
}

// pluralizeLast naively pluralizes the final word of a name; the
// aliasing pipeline's singularizer must undo it.
func pluralizeLast(name string) string {
	words := strings.Fields(name)
	last := words[len(words)-1]
	switch {
	case strings.HasSuffix(last, "y") && len(last) > 1 && !isVowel(last[len(last)-2]):
		last = last[:len(last)-1] + "ies"
	case strings.HasSuffix(last, "o"):
		last += "es"
	case strings.HasSuffix(last, "s"), strings.HasSuffix(last, "x"),
		strings.HasSuffix(last, "ch"), strings.HasSuffix(last, "sh"):
		last += "es"
	default:
		last += "s"
	}
	words[len(words)-1] = last
	return strings.Join(words, " ")
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// typo applies one random character substitution to a letter of name.
func (ps *PhraseSynthesizer) typo(name string) string {
	runes := []rune(name)
	// pick a letter position
	for attempt := 0; attempt < 10; attempt++ {
		i := ps.src.Intn(len(runes))
		if runes[i] >= 'a' && runes[i] <= 'z' {
			replacement := rune('a' + ps.src.Intn(26))
			if replacement != runes[i] {
				runes[i] = replacement
				return string(runes)
			}
		}
	}
	return name
}
