package synth

import (
	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

// baseCategoryWeight encodes the aggregate (WORLD) category preference
// the paper reports for Fig 2: "Vegetable, Spice, Dairy, Herb, Plant,
// Meat and Fruit categories are used most frequently".
var baseCategoryWeight = [flavor.NumCategories]float64{
	flavor.Vegetable:         1.60,
	flavor.Spice:             1.30,
	flavor.Dairy:             1.20,
	flavor.Herb:              1.10,
	flavor.Plant:             1.10,
	flavor.Meat:              1.00,
	flavor.Fruit:             0.95,
	flavor.Cereal:            0.80,
	flavor.Bakery:            0.60,
	flavor.NutsAndSeeds:      0.50,
	flavor.Legume:            0.50,
	flavor.Additive:          0.45,
	flavor.Dish:              0.45,
	flavor.Fish:              0.40,
	flavor.Beverage:          0.40,
	flavor.BeverageAlcoholic: 0.35,
	flavor.Seafood:           0.30,
	flavor.Maize:             0.30,
	flavor.Fungus:            0.30,
	flavor.EssentialOil:      0.10,
	flavor.Flower:            0.10,
}

// regionCategoryBoost multiplies base weights for the regional
// signatures the paper highlights: France, British Isles and
// Scandinavia use dairy more prominently than vegetables; the Indian
// Subcontinent, Africa, the Middle East and the Caribbean are
// spice-forward. Additional boosts encode well-known regional staples
// so the heatmap has realistic texture.
var regionCategoryBoost = map[recipedb.Region]map[flavor.Category]float64{
	recipedb.France:             {flavor.Dairy: 1.9, flavor.BeverageAlcoholic: 1.4, flavor.Bakery: 1.3},
	recipedb.BritishIsles:       {flavor.Dairy: 1.8, flavor.Bakery: 1.4, flavor.Meat: 1.2},
	recipedb.Scandinavia:        {flavor.Dairy: 1.85, flavor.Fish: 2.0, flavor.Bakery: 1.2},
	recipedb.IndianSubcontinent: {flavor.Spice: 1.9, flavor.Legume: 1.8, flavor.Dairy: 1.2},
	recipedb.Africa:             {flavor.Spice: 1.8, flavor.Legume: 1.3, flavor.Maize: 1.5},
	recipedb.MiddleEast:         {flavor.Spice: 1.75, flavor.NutsAndSeeds: 1.5, flavor.Legume: 1.4},
	recipedb.Caribbean:          {flavor.Spice: 1.7, flavor.Fruit: 1.4, flavor.Seafood: 1.4},
	recipedb.Japan:              {flavor.Fish: 2.6, flavor.Seafood: 2.0, flavor.Plant: 1.3},
	recipedb.Korea:              {flavor.Vegetable: 1.3, flavor.Plant: 1.35, flavor.Dish: 1.5},
	recipedb.China:              {flavor.Vegetable: 1.25, flavor.Plant: 1.3, flavor.Seafood: 1.3},
	recipedb.SouthEastAsia:      {flavor.Spice: 1.4, flavor.Fish: 1.5, flavor.Fruit: 1.2},
	recipedb.Thailand:           {flavor.Spice: 1.45, flavor.Herb: 1.4, flavor.Fish: 1.4},
	recipedb.Mexico:             {flavor.Maize: 3.0, flavor.Spice: 1.4, flavor.Legume: 1.4},
	recipedb.Italy:              {flavor.Herb: 1.45, flavor.Cereal: 1.6, flavor.Dairy: 1.25},
	recipedb.Greece:             {flavor.Herb: 1.35, flavor.Plant: 1.35, flavor.Dairy: 1.2},
	recipedb.Spain:              {flavor.Seafood: 1.6, flavor.Plant: 1.3, flavor.Meat: 1.2},
	recipedb.USA:                {flavor.Bakery: 1.35, flavor.Dairy: 1.3, flavor.Meat: 1.15},
	recipedb.DACH:               {flavor.Meat: 1.5, flavor.Dairy: 1.35, flavor.Bakery: 1.3},
	recipedb.EasternEurope:      {flavor.Meat: 1.4, flavor.Dairy: 1.3, flavor.Vegetable: 1.1},
	recipedb.Canada:             {flavor.Dairy: 1.25, flavor.Bakery: 1.2, flavor.Plant: 1.15},
	recipedb.AustraliaNZ:        {flavor.Meat: 1.25, flavor.Dairy: 1.2, flavor.Fruit: 1.15},
	recipedb.SouthAmerica:       {flavor.Maize: 1.8, flavor.Meat: 1.3, flavor.Legume: 1.3},
	recipedb.Portugal:           {flavor.Fish: 1.9, flavor.Seafood: 1.5},
	recipedb.Belgium:            {flavor.Dairy: 1.4, flavor.Bakery: 1.4},
	recipedb.CentralAmerica:     {flavor.Maize: 2.2, flavor.Legume: 1.4},
	recipedb.Netherlands:        {flavor.Dairy: 1.6, flavor.Bakery: 1.3},
}

// CategoryWeight returns the sampling weight of a category for a region:
// the world baseline times any regional boost.
func CategoryWeight(r recipedb.Region, cat flavor.Category) float64 {
	w := baseCategoryWeight[cat]
	if boost, ok := regionCategoryBoost[r]; ok {
		if m, ok := boost[cat]; ok {
			w *= m
		}
	}
	return w
}
