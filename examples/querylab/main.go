// Example querylab demonstrates slicing the culinary database with CQL,
// the library's SQL-like query language, and persisting the corpus with
// the embedded storage engine. It answers the kind of ad-hoc questions
// the paper's analyses start from: which cuisines are largest, where
// garlic shows up, which recipes are the most spice-dense, and how
// pairing scores differ per region.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/query"
	"culinary/internal/storage"
	"culinary/internal/synth"
)

func main() {
	// Build a small corpus (10% scale keeps this example under a few
	// seconds) and a query engine over it.
	catalog, err := flavor.Build(flavor.DefaultConfig())
	check(err)
	analyzer := pairing.NewAnalyzer(catalog)
	cfg := synth.DefaultConfig()
	cfg.Scale = 0.1
	store, err := synth.Generate(analyzer, cfg)
	check(err)
	engine := query.NewEngine(store, analyzer)

	statements := []string{
		// Table 1 in one statement: corpus size per region.
		`SELECT region, count(*), avg(size) FROM recipes GROUP BY region ORDER BY count(*) DESC LIMIT 8`,
		// Where does garlic appear, and how large are those recipes?
		`SELECT region, count(*) FROM recipes WHERE has('garlic') GROUP BY region ORDER BY count(*) DESC LIMIT 5`,
		// The most spice-dense Indian recipes.
		`SELECT name, size FROM recipes WHERE region = 'INSC' AND category('Spice') >= 4 ORDER BY size DESC LIMIT 5`,
		// Mean flavor-sharing per cuisine — the raw material of Fig 4.
		`SELECT region, avg(score) FROM recipes GROUP BY region ORDER BY avg(score) DESC LIMIT 8`,
		// Large recipes that avoid both salt and sugar.
		`SELECT name, region, size FROM recipes WHERE size >= 12 AND NOT has('salt') AND NOT has('sugar') LIMIT 5`,
	}
	for _, stmt := range statements {
		fmt.Printf("cql> %s\n", stmt)
		res, err := engine.Run(stmt)
		check(err)
		check(res.Table(fmt.Sprintf("%d rows, scanned %d recipes", len(res.Rows), res.Scanned)).Render(os.Stdout))
		fmt.Println()
	}

	// Persist the corpus with the embedded storage engine and read one
	// recipe back — the durable path the HTTP server uses with -db.
	dir := filepath.Join(os.TempDir(), "culinarydb-example")
	defer os.RemoveAll(dir)
	db, err := storage.Open(dir, storage.Options{})
	check(err)
	defer db.Close()
	check(storage.SaveCorpus(db, store))
	st := db.Stats()
	fmt.Printf("persisted snapshot: %d keys, %d live bytes, %d segments\n",
		st.Keys, st.LiveBytes, st.Segments)

	loaded, err := storage.LoadCorpus(db, catalog)
	check(err)
	fmt.Printf("reloaded %d recipes; recipe 0 = %q\n", loaded.Len(), loaded.Recipe(0).Name)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "querylab:", err)
		os.Exit(1)
	}
}
