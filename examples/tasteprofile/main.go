// Tasteprofile: enumerate the taste of recipes — the paper's §V open
// question "Could it be possible to enumerate the taste of a recipe?" —
// and propose novel flavor pairings in a cuisine's own blending style.
package main

import (
	"fmt"
	"log"

	"culinary/internal/experiments"
	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
)

func main() {
	env, err := experiments.NewEnv(experiments.Options{
		Scale: 0.1, NullRecipes: 1000, Seed: 20180416,
	})
	if err != nil {
		log.Fatal(err)
	}
	catalog := env.Catalog

	// 1. Taste profiles of two contrasting dishes.
	caprese := mustIDs(catalog, "tomato", "mozzarella cheese", "basil", "olive oil")
	curry := mustIDs(catalog, "lentil", "turmeric", "cumin", "ghee", "onion", "garam masala")

	fmt.Println("Taste profile — caprese (tomato, mozzarella, basil, olive oil):")
	printTaste(catalog.TasteProfile(caprese))
	fmt.Println("\nTaste profile — dal (lentil, turmeric, cumin, ghee, onion, garam masala):")
	printTaste(catalog.TasteProfile(curry))

	dist := flavor.TasteDistance(catalog.TasteProfile(caprese), catalog.TasteProfile(curry))
	fmt.Printf("\ntaste distance caprese ↔ dal: %.3f (0 = identical, 2 = disjoint)\n", dist)

	// 2. Novel pairings for two cuisines with opposite styles.
	for _, region := range []recipedb.Region{recipedb.Italy, recipedb.Japan} {
		cuisine := env.Store.BuildCuisine(region)
		pairs := pairing.NovelPairs(env.Analyzer, env.Store, cuisine,
			region.PairingSign(), 5, 3, 0)
		style := "uniform (maximize flavor overlap)"
		if region.PairingSign() < 0 {
			style = "contrasting (minimize flavor overlap)"
		}
		fmt.Printf("\nNovel pairings for %s — style: %s\n", region.Code(), style)
		for i, p := range pairs {
			fmt.Printf("  %d. %s + %s  (%d shared compounds, never co-used in %d+%d recipes)\n",
				i+1, catalog.Ingredient(p.A).Name, catalog.Ingredient(p.B).Name,
				p.Shared, p.SupportA, p.SupportB)
		}
	}
}

func mustIDs(catalog *flavor.Catalog, names ...string) []flavor.ID {
	out := make([]flavor.ID, len(names))
	for i, n := range names {
		id, ok := catalog.Lookup(n)
		if !ok {
			log.Fatalf("unknown ingredient %q", n)
		}
		out[i] = id
	}
	return out
}

func printTaste(profile []flavor.DescriptorWeight) {
	if len(profile) > 6 {
		profile = profile[:6]
	}
	for _, d := range profile {
		bar := ""
		for i := 0; i < int(d.Weight*200); i++ {
			bar += "#"
		}
		fmt.Printf("  %-14s %5.1f%%  %s\n", d.Descriptor, 100*d.Weight, bar)
	}
}
