// Aliasing: demonstrate the §IV.A ingredient-aliasing pipeline on raw
// recipe phrases — the NLP path from scraped text to catalog entities —
// including partial matches, fuzzy spelling recovery, and the curation
// report that surfaces recurring unknown ingredients.
package main

import (
	"fmt"
	"log"

	"culinary/internal/alias"
	"culinary/internal/flavor"
)

func main() {
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	al := alias.New(catalog)
	fmt.Printf("aliasing vocabulary: %d recognizable names\n\n", al.VocabularySize())

	phrases := []string{
		"2 jalapeno peppers, roasted and slit", // the paper's worked example
		"1/2 cup extra-virgin olive oil",
		"3 cloves garlic, finely minced",
		"1 pound fresh tomatoes, cored and quartered",
		"2 cups garbanzo beans, drained and rinsed", // synonym
		"1 tsp tumeric",                 // misspelling
		"100 ml double cream",           // regional synonym
		"2 aubergines, cubed",           // regional synonym + plural
		"1 packet unobtainium crystals", // unknown
		"3 unobtainium crystals",        // recurring unknown
		"a pinch of saffron threads",
		"1 cup chicken stock",
	}

	matches := al.ResolveAll(phrases)
	for _, m := range matches {
		name := "—"
		if m.Ingredient != flavor.Invalid {
			name = catalog.Ingredient(m.Ingredient).Name
		}
		note := ""
		if m.Fuzzy {
			note = " [fuzzy]"
		}
		if len(m.Residual) > 0 {
			note += fmt.Sprintf(" [residual: %v]", m.Residual)
		}
		fmt.Printf("%-13s %-22s ← %q%s\n", m.Status, name, m.Phrase, note)
	}

	rep := alias.Curate(matches, 2)
	fmt.Printf("\nmatch rate %.0f%% (%d matched, %d partial, %d unrecognized)\n",
		100*rep.MatchRate(), rep.Matched, rep.Partial, rep.Unrecognized)
	if len(rep.Candidates) > 0 {
		fmt.Println("curation candidates (recurring unmatched n-grams):")
		for _, c := range rep.Candidates {
			fmt.Printf("  %-24s ×%d\n", c.NGram, c.Count)
		}
	}
}
