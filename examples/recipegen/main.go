// Recipegen: use the food-pairing framework for the application the
// paper motivates — designing novel ingredient combinations. Starting
// from seed ingredients, the generator greedily extends a recipe with
// the catalog ingredient that best matches the target cuisine's pairing
// style (maximizing flavor sharing for uniform-pairing cuisines,
// minimizing it for contrasting ones), restricted to ingredients the
// cuisine actually uses.
//
// Usage: go run ./examples/recipegen [REGION_CODE] [seed ingredients...]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"culinary/internal/experiments"
	"culinary/internal/flavor"
	"culinary/internal/recipedb"
)

func main() {
	region := recipedb.Italy
	seeds := []string{"tomato", "basil"}
	if len(os.Args) > 1 {
		r, err := recipedb.ParseRegion(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		region = r
	}
	if len(os.Args) > 2 {
		seeds = os.Args[2:]
	}

	env, err := experiments.NewEnv(experiments.Options{
		Scale: 0.2, NullRecipes: 1000, Seed: 20180416,
	})
	if err != nil {
		log.Fatal(err)
	}
	catalog := env.Catalog

	recipe := make([]flavor.ID, 0, 9)
	for _, s := range seeds {
		id, ok := catalog.Lookup(s)
		if !ok {
			log.Fatalf("unknown ingredient %q", s)
		}
		recipe = append(recipe, id)
	}

	cuisine := env.Store.BuildCuisine(region)
	sign := float64(region.PairingSign())
	if sign == 0 {
		sign = 1
	}
	fmt.Printf("Designing a %s-style recipe (pairing sign %+.0f) from seeds %v\n\n",
		region.Code(), sign, seeds)

	for len(recipe) < 9 {
		best, bestScore := flavor.Invalid, 0.0
		for _, cand := range cuisine.UniqueIngredients {
			if !catalog.Ingredient(cand).HasProfile || contains(recipe, cand) {
				continue
			}
			var total float64
			for _, member := range recipe {
				total += float64(env.Analyzer.Shared(cand, member))
			}
			score := sign * total / float64(len(recipe))
			// Mild popularity prior: frequently used ingredients are more
			// culturally plausible.
			score += 0.08 * float64(cuisine.IngredientFreq[cand])
			if best == flavor.Invalid || score > bestScore {
				best, bestScore = cand, score
			}
		}
		if best == flavor.Invalid {
			break
		}
		recipe = append(recipe, best)
	}

	ns, _ := env.Analyzer.RecipeScore(recipe)
	fmt.Println("Suggested recipe:")
	names := make([]string, len(recipe))
	for i, id := range recipe {
		names[i] = catalog.Ingredient(id).Name
	}
	sort.Strings(names[len(seeds):]) // stable display of added items
	for i, n := range names {
		marker := "+"
		if i < len(seeds) {
			marker = "*"
		}
		fmt.Printf("  %s %s\n", marker, n)
	}
	fmt.Printf("\nfood pairing score Ns = %.2f (cuisine mean N̄s = %.2f)\n",
		ns, cuisineMean(env, cuisine))
	fmt.Println("* seed ingredient, + suggested")
}

func contains(ids []flavor.ID, id flavor.ID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func cuisineMean(env *experiments.Env, c *recipedb.Cuisine) float64 {
	mean, _ := env.Analyzer.CuisineScore(env.Store, c)
	return mean
}
