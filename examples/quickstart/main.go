// Quickstart: build the catalog, generate a small corpus, and run the
// food-pairing analysis for one cuisine — the minimal end-to-end tour of
// the library's public API surface.
package main

import (
	"fmt"
	"log"

	"culinary/internal/flavor"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
	"culinary/internal/rng"
	"culinary/internal/synth"
)

func main() {
	// 1. Build the ingredient catalog with synthetic flavor profiles.
	catalog, err := flavor.Build(flavor.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d ingredients over %d flavor molecules\n",
		catalog.Len(), catalog.NumMolecules())

	// 2. Inspect a pair of ingredients: the food-pairing primitive.
	tomato, _ := catalog.Lookup("tomato")
	basil, _ := catalog.Lookup("basil")
	fmt.Printf("tomato ∩ basil share %d flavor compounds\n",
		catalog.SharedCompounds(tomato, basil))

	// 3. Precompute the pair-sharing matrix and generate a corpus at 10%
	// of the paper's scale (the full 45,772-recipe corpus is Scale: 1).
	analyzer := pairing.NewAnalyzer(catalog)
	cfg := synth.DefaultConfig()
	cfg.Scale = 0.1
	store, err := synth.Generate(analyzer, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d recipes across %d regions\n",
		store.Len(), len(store.Regions()))

	// 4. Score one recipe.
	r := store.Recipe(0)
	if score, ok := analyzer.RecipeScore(r.Ingredients); ok {
		fmt.Printf("recipe %q (%d ingredients): Ns = %.2f\n",
			r.Name, r.Size(), score)
	}

	// 5. Full cuisine analysis: observed flavor sharing vs the Random
	// control, as in Fig 4 of the paper.
	cuisine := store.BuildCuisine(recipedb.Italy)
	res, err := pairing.Compare(analyzer, store, cuisine,
		pairing.RandomModel, 20000, rng.New(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nItaly: N̄s=%.2f, random control %.2f±%.2f, Z=%+.1f\n",
		res.Observed, res.NullMean, res.NullStd, res.Z)
	if res.Z > 0 {
		fmt.Println("→ uniform food pairing (blends similar flavors), as the paper reports")
	} else {
		fmt.Println("→ contrasting food pairing")
	}
}
