// Fingerprint: compute a cuisine's 'culinary fingerprint' — its
// food-pairing direction, the null models that explain it, and the
// ingredients that carry it (the paper's Fig 4 + Fig 5 for one region).
//
// Usage: go run ./examples/fingerprint [REGION_CODE]   (default INSC)
package main

import (
	"fmt"
	"log"
	"os"

	"culinary/internal/experiments"
	"culinary/internal/pairing"
	"culinary/internal/recipedb"
)

func main() {
	region := recipedb.IndianSubcontinent
	if len(os.Args) > 1 {
		r, err := recipedb.ParseRegion(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		region = r
	}

	env, err := experiments.NewEnv(experiments.Options{
		Scale: 0.2, NullRecipes: 20000, Seed: 20180416,
	})
	if err != nil {
		log.Fatal(err)
	}

	row, err := env.Fig4Region(region)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Culinary fingerprint of %s (%s)\n", region.Name(), region.Code())
	fmt.Printf("  mean flavor sharing N̄s      %.3f\n", row.Observed)
	fmt.Printf("  random control              %.3f ± %.3f\n", row.RandomMean, row.RandomStd)
	fmt.Printf("  Z-score                     %+.1f\n", row.ZCuisine)
	direction := "uniform (positive) pairing — similar flavors blend"
	sign := 1
	if row.ZCuisine < 0 {
		direction = "contrasting (negative) pairing — dissimilar flavors blend"
		sign = -1
	}
	fmt.Printf("  direction                   %s\n\n", direction)

	fmt.Println("What explains the pattern? (model mean as Z vs random control)")
	for _, m := range []pairing.Model{pairing.FrequencyModel, pairing.CategoryModel, pairing.FrequencyCategoryModel} {
		share := 0.0
		if row.ZCuisine != 0 {
			share = 100 * row.ZModel[m] / row.ZCuisine
		}
		fmt.Printf("  %-22s Z=%+9.1f  (%.0f%% of the cuisine's deviation)\n",
			m.String(), row.ZModel[m], share)
	}

	fmt.Println("\nIngredients carrying the pattern (leave-one-out ΔN̄s%):")
	cuisine := env.Store.BuildCuisine(region)
	contribs := env.Analyzer.Contributions(env.Store, cuisine)
	for i, c := range pairing.TopContributors(contribs, 5, sign) {
		fmt.Printf("  %d. %-20s freq=%-5d ΔN̄s%%=%+.2f\n", i+1, c.Name, c.Freq, c.DeltaPct)
	}
}
