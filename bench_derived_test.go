// Derived-state maintenance benchmarks: the cost of bringing each
// version-aware read model (classifier, recommender, search index) up
// to the corpus head, and the incremental posting-list maintenance the
// live search index does per mutation instead of a full rebuild. These
// back the CI bench gate rows DerivedRebuild/* and
// SearchIncrementalUpsert in BENCH_baseline.json.
package culinary

import (
	"fmt"
	"testing"

	"culinary/internal/classify"
	"culinary/internal/experiments"
	"culinary/internal/recipedb"
	"culinary/internal/recommend"
	"culinary/internal/search"
)

// BenchmarkDerivedRebuild measures one full rebuild of each derived
// model over the benchmark corpus — the work the background rebuild
// loop pays per debounce interval while the corpus is mutating.
func BenchmarkDerivedRebuild(b *testing.B) {
	b.Run("classifier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			benchEnv.Store.Read(func(v *recipedb.View) {
				c := classify.New()
				err = c.TrainView(v, v.LiveIDs())
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recommender", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var r *recommend.Recommender
			benchEnv.Store.Read(func(v *recipedb.View) {
				r = recommend.NewFromView(benchEnv.Analyzer, v)
			})
			if r.Version() != benchEnv.Store.Version() {
				b.Fatal("rebuild landed at the wrong version")
			}
		}
	})
	b.Run("search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if search.Build(benchEnv.Store).DocCount() == 0 {
				b.Fatal("empty index")
			}
		}
	})
}

// BenchmarkSearchIncrementalUpsert measures the live index's per-
// mutation maintenance: each store upsert re-tokenizes one recipe and
// patches its posting lists inside the mutation critical section —
// the price of the "acked upsert is searchable on the next request"
// contract, which a full Build per mutation could never afford.
func BenchmarkSearchIncrementalUpsert(b *testing.B) {
	// A private corpus: the upserts below mutate it, and the shared
	// benchEnv must stay pristine for the other benchmarks.
	env, err := experiments.NewEnv(experiments.TestOptions())
	if err != nil {
		b.Fatal(err)
	}
	live := search.NewLive(env.Store)
	const slots = 64
	if env.Store.Len() < slots*2 {
		b.Fatal("corpus too small")
	}
	// Donor ingredient lists drawn from existing recipes keep the
	// upserts valid without exercising catalog lookup in the loop.
	donors := make([]recipedb.Recipe, slots)
	for i := range donors {
		donors[i] = env.Store.Recipe(slots + i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		donor := donors[i%slots]
		_, _, _, err := env.Store.Upsert(i%slots, fmt.Sprintf("bench upsert %d", i),
			donor.Region, donor.Source, donor.Ingredients)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if live.Version() != env.Store.Version() {
		b.Fatalf("live index at version %d, store at %d", live.Version(), env.Store.Version())
	}
}
